"""The subscription tree (paper §4.1).

A broker stores its subscriptions in a tree ordered by the covering
relation: a node's XPE covers every XPE in its subtree.  Because
covering is only a partial order, a node may be covered by several
subscriptions; *super pointers* record covering relations that the tree
shape cannot (turning the structure into a DAG).  The tree serves three
purposes:

* **compact routing state** — only the top-level (maximal) subscriptions
  are forwarded to neighbours; everything deeper is redundant,
* **fast covering checks** — a new subscription descends from the root
  and needs comparisons only along its insertion path,
* **fast publication matching** — if a publication fails a node's XPE it
  cannot match anything in that node's subtree, so whole subtrees are
  pruned.

Insertion implements the paper's three cases: descend into a covering
child (case 3), capture covered siblings as children (case 2), or join
as a new sibling (case 1).  Multiple subscribers/last-hops may share one
XPE; the node keeps a reference count per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.cache import LRUCache
from repro.covering.algorithms import covers
from repro.covering.pathmatch import path_matcher
from repro.xpath.ast import XPathExpr


@dataclass(eq=False)
class SubNode:
    """One subscription in the tree.

    Identity semantics (``eq=False``): nodes are mutable containers and
    list membership tests must not recurse into children/parents.
    """

    expr: XPathExpr
    parent: Optional["SubNode"] = None
    children: List["SubNode"] = field(default_factory=list)
    keys: Set[object] = field(default_factory=set)
    super_pointers: Set[int] = field(default_factory=set)

    def depth(self):
        """Root children are at depth 1."""
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def __repr__(self):
        return "SubNode(%s, keys=%r)" % (self.expr, sorted(map(str, self.keys)))


@dataclass(frozen=True)
class InsertOutcome:
    """Result of inserting an XPE.

    Attributes:
        node: the tree node now holding the XPE.
        is_new: False when the exact XPE was already present (the key
            was merged into the existing node).
        covered: True when an existing *different* subscription covers
            the new one — a covering-based router then suppresses
            forwarding.
        displaced: previously top-level XPEs that the new subscription
            covers; they moved under the new node and a covering-based
            router unsubscribes them from its neighbours.
    """

    node: SubNode
    is_new: bool
    covered: bool
    displaced: Tuple[XPathExpr, ...]


@dataclass(frozen=True)
class RemoveOutcome:
    """Result of removing an XPE.

    Attributes:
        removed: True when the XPE (for this key) left the tree.
        was_top_level: the removed node was top-level, i.e. had been
            forwarded, so an unsubscription must propagate.
        promoted: XPEs that became top-level because their covering
            parent vanished; a covering-based router forwards them now.
    """

    removed: bool
    was_top_level: bool
    promoted: Tuple[XPathExpr, ...]


class SubscriptionTree:
    """Covering-ordered subscription storage for one broker.

    Args:
        eager_super_pointers: maintain super pointers on every insert
            (an O(n) scan, exactly the cost the paper warns about and
            then postpones).  They are not needed for routing decisions
            — displacement is detected from sibling scans — so the
            default is lazy (off).
    """

    def __init__(self, eager_super_pointers: bool = False):
        self._root = SubNode(expr=None)  # sentinel
        self._by_expr: Dict[XPathExpr, SubNode] = {}
        self._eager_super_pointers = eager_super_pointers
        #: Lifetime count of covering comparisons made by descents; the
        #: instrumented entry points publish deltas of this as the
        #: ``covering.tree.cover_checks`` metric.
        self.cover_checks = 0
        #: Epoch counter versioning :attr:`keys_cache` entries; every
        #: mutation (insert, remove, merge sweep) bumps it, so stale
        #: cached match results are recomputed rather than served.
        self.match_epoch = 0
        #: Path -> (epoch, frozenset of keys) memo for attribute-free
        #: publications (the hashable case; attribute-bearing matches
        #: are cached one level up, in the broker, keyed on the
        #: publication's attribute fingerprint).
        self.keys_cache = LRUCache(
            maxsize=2048, metric_prefix="covering.tree.keys_cache"
        )

    # -- size metrics -----------------------------------------------------

    def __len__(self):
        """Number of distinct XPEs stored (covered ones included)."""
        return len(self._by_expr)

    def top_level_size(self):
        """Number of maximal (forwarded) XPEs — the routing-table size a
        downstream broker has to carry (Figure 6's metric)."""
        return len(self._root.children)

    def top_level_exprs(self):
        return [child.expr for child in self._root.children]

    def __contains__(self, expr):
        return expr in self._by_expr

    def exprs(self):
        return list(self._by_expr)

    def node_of(self, expr):
        return self._by_expr.get(expr)

    # -- insertion ---------------------------------------------------------

    def insert(self, expr: XPathExpr, key: object = None) -> InsertOutcome:
        """Insert *expr* for subscriber/last-hop *key* (paper's three
        cases; breadth-first descent from the root)."""
        registry = obs.get_registry()
        if not registry.enabled:
            return self._insert(expr, key)
        checks_before = self.cover_checks
        with registry.timer("covering.tree.insert"):
            outcome = self._insert(expr, key)
        registry.counter("covering.tree.cover_checks").inc(
            self.cover_checks - checks_before
        )
        return outcome

    def invalidate_matches(self):
        """Version out every cached match result (mutators call this;
        the merging engine calls it when a sweep rewrites the tree)."""
        self.match_epoch += 1

    def _insert(self, expr: XPathExpr, key: object = None) -> InsertOutcome:
        self.match_epoch += 1
        existing = self._by_expr.get(expr)
        if existing is not None:
            existing.keys.add(key)
            return InsertOutcome(
                node=existing,
                is_new=False,
                covered=True,
                displaced=(),
            )

        parent = self._descend(self._root, expr)

        covered_siblings = [
            child for child in parent.children if covers(expr, child.expr)
        ]
        node = SubNode(expr=expr, parent=parent, keys={key})
        for child in covered_siblings:
            parent.children.remove(child)
            child.parent = node
            node.children.append(child)
        parent.children.append(node)
        self._by_expr[expr] = node

        if self._eager_super_pointers:
            self._update_super_pointers(node)

        top_level = parent is self._root
        displaced = (
            tuple(child.expr for child in covered_siblings)
            if top_level
            else ()
        )
        return InsertOutcome(
            node=node,
            is_new=True,
            covered=not top_level,
            displaced=displaced,
        )

    def _update_super_pointers(self, node: SubNode):
        """Record covering relations the tree shape cannot express: the
        new node covers nodes outside its subtree, and existing nodes
        outside the new node's ancestor chain cover it."""
        subtree = set()
        stack = [node]
        while stack:
            current = stack.pop()
            subtree.add(id(current))
            stack.extend(current.children)
        ancestors = set()
        current = node.parent
        while current is not None:
            ancestors.add(id(current))
            current = current.parent
        for other in self._by_expr.values():
            if id(other) in subtree or id(other) in ancestors:
                continue
            if covers(node.expr, other.expr):
                node.super_pointers.add(id(other))
            if covers(other.expr, node.expr):
                other.super_pointers.add(id(node))

    # -- removal -----------------------------------------------------------

    def remove(self, expr: XPathExpr, key: object = None) -> RemoveOutcome:
        """Remove *expr* for *key*.  The node disappears only when its
        last key is gone.  Its children are *re-placed* from the old
        parent — a child may be covered by a different node (the
        multi-coverer case the paper's super pointers track), in which
        case it descends there instead of joining the parent's level.
        Only children that end up top-level are reported as promoted
        (they are the ones a covering-based router must now forward)."""
        node = self._by_expr.get(expr)
        if node is None:
            return RemoveOutcome(removed=False, was_top_level=False, promoted=())
        self.match_epoch += 1
        node.keys.discard(key)
        if node.keys:
            return RemoveOutcome(removed=False, was_top_level=False, promoted=())

        parent = node.parent
        was_top_level = parent is self._root
        parent.children.remove(node)
        del self._by_expr[expr]
        promoted = []
        for child in node.children:
            target = self._descend(parent, child.expr)
            child.parent = target
            target.children.append(child)
            if was_top_level and target is self._root:
                promoted.append(child.expr)
        for other in self._by_expr.values():
            other.super_pointers.discard(id(node))
        return RemoveOutcome(
            removed=True,
            was_top_level=was_top_level,
            promoted=tuple(promoted),
        )

    def _descend(self, start: SubNode, expr: XPathExpr) -> SubNode:
        """Walk from *start* into covering children until none covers
        *expr* (the insertion descent, reused by child re-placement).

        The sibling scans apply the paper's §4.1 search properties as
        O(1) prechecks before the covering algorithms run:

        * a coverer is never longer than the covered expression
          (the *absolute XPE node* property generalised to the whole
          language — every covering algorithm requires ``|s1| <= |s2|``);
        * an absolute node never covers a relative expression unless it
          is all-wildcards (the *relative XPE node* property: relative
          XPEs never live inside absolute subtrees).
        """
        expr_len = len(expr.steps)
        relative = expr.is_relative
        current = start
        while True:
            covering_child = None
            for child in current.children:
                child_expr = child.expr
                if len(child_expr.steps) > expr_len:
                    continue
                if (
                    relative
                    and child_expr.rooted
                    and not all(s.is_wildcard for s in child_expr.steps)
                ):
                    continue
                self.cover_checks += 1
                if covers(child_expr, expr):
                    covering_child = child
                    break
            if covering_child is None:
                return current
            current = covering_child

    # -- matching ----------------------------------------------------------

    def match(self, path: Sequence[str], attributes=None) -> List[SubNode]:
        """All nodes whose XPE matches the publication *path*.

        Failing a node prunes its whole subtree: the node covers its
        descendants, so a path it rejects cannot match them either.
        """
        registry = obs.get_registry()
        if not registry.enabled:
            return self._match(path, attributes)
        with registry.timer("covering.tree.match"):
            matched, visited = self._match(path, attributes, count=True)
        registry.counter("covering.tree.nodes_visited").inc(visited)
        registry.counter("covering.tree.nodes_pruned").inc(
            len(self._by_expr) - visited
        )
        return matched

    def _match(self, path, attributes=None, count=False):
        # One path probed against many XPEs: render the compiled path
        # string once and reuse it down the whole descent.
        wants = path_matcher(path, attributes)
        matched: List[SubNode] = []
        visited = 0
        stack = list(self._root.children)
        while stack:
            node = stack.pop()
            visited += 1
            if wants(node.expr):
                matched.append(node)
                stack.extend(node.children)
        if count:
            return matched, visited
        return matched

    def match_keys(self, path: Sequence[str], attributes=None) -> Set[object]:
        """Union of the subscriber keys of all matching nodes.

        Attribute-free probes (the hashable, overwhelmingly common
        case) are memoised against :attr:`match_epoch` — repeated
        publication paths skip the descent entirely until the next
        tree mutation."""
        if attributes is None:
            cache_key = path if type(path) is tuple else tuple(path)
            entry = self.keys_cache.get(cache_key)
            if entry is not None and entry[0] == self.match_epoch:
                return entry[1]
            keys: Set[object] = set()
            for node in self.match(path, None):
                keys |= node.keys
            result = frozenset(keys)
            self.keys_cache.put(cache_key, (self.match_epoch, result))
            return result
        keys = set()
        for node in self.match(path, attributes):
            keys |= node.keys
        return keys

    def matches_any(self, path: Sequence[str], attributes=None) -> bool:
        """True when some stored XPE matches *path* (top-level check
        only — by covering, a match anywhere implies one at top level)."""
        wants = path_matcher(path, attributes)
        return any(wants(child.expr) for child in self._root.children)

    # -- introspection -----------------------------------------------------

    def iter_nodes(self) -> Iterable[SubNode]:
        stack = list(self._root.children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def validate(self):
        """Check the covering invariant everywhere (test support)."""
        for node in self.iter_nodes():
            for child in node.children:
                if not covers(node.expr, child.expr):
                    raise AssertionError(
                        "covering invariant violated: %s !>= %s"
                        % (node.expr, child.expr)
                    )

    def to_dot(self, max_label: int = 40) -> str:
        """Graphviz DOT rendering of the tree (debugging aid).

        Solid edges are parent/child covering edges; dashed edges are
        super pointers (present only in eager mode).
        """
        lines = ["digraph subscription_tree {", "  rankdir=TB;"]
        ids = {}

        def node_id(node):
            if id(node) not in ids:
                ids[id(node)] = "n%d" % len(ids)
            return ids[id(node)]

        index = {id(n): n for n in self.iter_nodes()}
        lines.append('  %s [label="ROOT", shape=box];' % node_id(self._root))
        for node in self.iter_nodes():
            label = str(node.expr)
            if len(label) > max_label:
                label = label[: max_label - 3] + "..."
            label = label.replace('"', "'")
            lines.append(
                '  %s [label="%s (%d)"];'
                % (node_id(node), label, len(node.keys))
            )
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children:
                lines.append(
                    "  %s -> %s;" % (node_id(node), node_id(child))
                )
                stack.append(child)
        for node in self.iter_nodes():
            for pointer in node.super_pointers:
                target = index.get(pointer)
                if target is not None:
                    lines.append(
                        "  %s -> %s [style=dashed];"
                        % (node_id(node), node_id(target))
                    )
        lines.append("}")
        return "\n".join(lines)

    @property
    def root(self):
        return self._root
