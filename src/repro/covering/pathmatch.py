"""Publication-path vs. XPE matching.

A publication is a root-to-leaf path of concrete element names (paper
§3.1), optionally annotated with per-element attribute mappings (the
value-comparison extension).  An XPE matches a publication when it
selects a node on the path:

* an absolute XPE must cover a *prefix* of the path,
* a relative XPE must cover some contiguous *infix*,
* ``//`` splits the XPE into segments that must cover disjoint infixes
  in order (the first anchored at position 0 for absolute XPEs),
* a step's attribute predicates must hold at its matched position.

Greedy earliest placement is exact for predicate-free expressions (path
elements are concrete, so segment feasibility is monotone in the start
position) and remains exact with predicates — they only further
constrain individual positions.

:func:`matches_path` dispatches through the compiled fast path
(:mod:`repro.xpath.compiled`) by default; the interpreter below is kept
verbatim as :func:`matches_path_reference`, the differential oracle the
compiled forms are tested against (and the runtime fallback when
``REPRO_COMPILED=0``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.xpath import compiled as _compiled
from repro.xpath.ast import WILDCARD, XPathExpr

_EMPTY = {}


def _segment_at(segment, path, attributes, offset):
    """Match one predicate-aware segment of Step objects at *offset*."""
    if offset + len(segment) > len(path):
        return False
    for i, step in enumerate(segment):
        if step.test != WILDCARD and step.test != path[offset + i]:
            return False
        if step.predicates:
            attrs = (
                attributes[offset + i] if attributes is not None else _EMPTY
            )
            if not all(p.evaluate(attrs) for p in step.predicates):
                return False
    return True


def _tests_at(segment, path, offset):
    """Fast path: predicate-free segment of bare tests at *offset*."""
    if offset + len(segment) > len(path):
        return False
    for i, test in enumerate(segment):
        if test != WILDCARD and test != path[offset + i]:
            return False
    return True


def matches_path(
    expr: XPathExpr,
    path: Sequence[str],
    attributes: Optional[Sequence] = None,
) -> bool:
    """True when *expr* matches the publication *path*.

    Dispatches through the compiled form of *expr* unless the compiled
    fast path is disabled (``REPRO_COMPILED=0`` / ``--no-compiled``),
    in which case the reference interpreter runs.

    Args:
        expr: the XPE.
        path: root-to-leaf element names.
        attributes: optional per-element attribute mappings, aligned
            with *path*; when omitted, every element has no attributes
            (so predicates other than nothing fail).
    """
    if _compiled.ENABLED:
        return _compiled.compile_xpe(expr).matches(path, attributes)
    return matches_path_reference(expr, path, attributes)


def path_matcher(path: Sequence[str], attributes: Optional[Sequence] = None):
    """A ``expr -> bool`` callable specialised to one publication path.

    Bulk matchers (linear scan, subscription tree, edge-delivery
    recheck) probe many expressions against the same path; this renders
    the compiled path string **once** and hands every probe the
    precomputed text, instead of re-deriving it per expression.
    """
    if _compiled.ENABLED:
        text = _compiled.path_string(
            path if type(path) is tuple else tuple(path)
        )
        compile_xpe = _compiled.compile_xpe

        def check(expr: XPathExpr) -> bool:
            compiled = getattr(expr, "_compiled_cache", None)
            if compiled is None:
                compiled = compile_xpe(expr)
            # Inline the regex common case: a pattern needing more
            # elements than the path holds simply fails to match, so
            # the min-length precheck is redundant here.
            regex = compiled.regex
            if regex is not None and text is not None:
                return regex(text) is not None
            return compiled.matches_text(text, path, attributes)

        return check

    def check_reference(expr: XPathExpr) -> bool:
        return matches_path_reference(expr, path, attributes)

    return check_reference


def matches_path_reference(
    expr: XPathExpr,
    path: Sequence[str],
    attributes: Optional[Sequence] = None,
) -> bool:
    """The interpreted matcher (differential oracle for the compiled
    fast path; semantics documented on :func:`matches_path`)."""
    if len(expr) > len(path):
        return False
    if expr.has_predicates:
        segments = expr.step_segments

        def test(segment, offset):
            return _segment_at(segment, path, attributes, offset)
    else:
        segments = expr.segments

        def test(segment, offset):
            return _tests_at(segment, path, offset)

    position = 0
    for index, segment in enumerate(segments):
        if index == 0 and expr.anchored:
            if not test(segment, 0):
                return False
            position = len(segment)
            continue
        placed = False
        for offset in range(position, len(path) - len(segment) + 1):
            if test(segment, offset):
                position = offset + len(segment)
                placed = True
                break
        if not placed:
            return False
    return True


def matches_document_paths(expr: XPathExpr, paths) -> bool:
    """True when *expr* matches at least one root-to-leaf path of a
    document given as an iterable of paths."""
    return any(matches_path(expr, path) for path in paths)
