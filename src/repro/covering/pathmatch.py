"""Publication-path vs. XPE matching.

A publication is a root-to-leaf path of concrete element names (paper
§3.1), optionally annotated with per-element attribute mappings (the
value-comparison extension).  An XPE matches a publication when it
selects a node on the path:

* an absolute XPE must cover a *prefix* of the path,
* a relative XPE must cover some contiguous *infix*,
* ``//`` splits the XPE into segments that must cover disjoint infixes
  in order (the first anchored at position 0 for absolute XPEs),
* a step's attribute predicates must hold at its matched position.

Greedy earliest placement is exact for predicate-free expressions (path
elements are concrete, so segment feasibility is monotone in the start
position) and remains exact with predicates — they only further
constrain individual positions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.xpath.ast import WILDCARD, XPathExpr

_EMPTY = {}


def _segment_at(segment, path, attributes, offset):
    """Match one predicate-aware segment of Step objects at *offset*."""
    if offset + len(segment) > len(path):
        return False
    for i, step in enumerate(segment):
        if step.test != WILDCARD and step.test != path[offset + i]:
            return False
        if step.predicates:
            attrs = (
                attributes[offset + i] if attributes is not None else _EMPTY
            )
            if not all(p.evaluate(attrs) for p in step.predicates):
                return False
    return True


def _tests_at(segment, path, offset):
    """Fast path: predicate-free segment of bare tests at *offset*."""
    if offset + len(segment) > len(path):
        return False
    for i, test in enumerate(segment):
        if test != WILDCARD and test != path[offset + i]:
            return False
    return True


def matches_path(
    expr: XPathExpr,
    path: Sequence[str],
    attributes: Optional[Sequence] = None,
) -> bool:
    """True when *expr* matches the publication *path*.

    Args:
        expr: the XPE.
        path: root-to-leaf element names.
        attributes: optional per-element attribute mappings, aligned
            with *path*; when omitted, every element has no attributes
            (so predicates other than nothing fail).
    """
    if len(expr) > len(path):
        return False
    if expr.has_predicates:
        segments = expr.step_segments

        def test(segment, offset):
            return _segment_at(segment, path, attributes, offset)
    else:
        segments = expr.segments

        def test(segment, offset):
            return _tests_at(segment, path, offset)

    position = 0
    for index, segment in enumerate(segments):
        if index == 0 and expr.anchored:
            if not test(segment, 0):
                return False
            position = len(segment)
            continue
        placed = False
        for offset in range(position, len(path) - len(segment) + 1):
            if test(segment, offset):
                position = offset + len(segment)
                placed = True
                break
        if not placed:
            return False
    return True


def matches_document_paths(expr: XPathExpr, paths) -> bool:
    """True when *expr* matches at least one root-to-leaf path of a
    document given as an iterable of paths."""
    return any(matches_path(expr, path) for path in paths)
