"""Command-line interface.

Usage::

    python -m repro.cli adverts --sample nitf          # advertisement set
    python -m repro.cli adverts my.dtd --stats
    python -m repro.cli paths --sample psd             # DTD path universe
    python -m repro.cli workload --sample psd -n 20    # query generator
    python -m repro.cli match "/a//b" a/x/b            # XPE vs path
    python -m repro.cli covers "/a" "/a/b"             # covering check
    python -m repro.cli simulate --levels 3 --strategy with-Adv-with-Cov
    python -m repro.cli stats --levels 3               # metrics snapshot
    python -m repro.cli experiments --only fig6        # paper tables

Each subcommand is a thin veneer over the library — anything it prints
can be recomputed through the public API.
"""

from __future__ import annotations

import argparse
import collections
import sys

from repro.adverts.generator import generate_advertisements
from repro.broker.strategies import MATCHING_ENGINES, RoutingConfig
from repro.covering.algorithms import covers
from repro.covering.pathmatch import matches_path
from repro.dtd.parser import parse_dtd
from repro.dtd.paths import enumerate_paths, is_recursive
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.errors import ReproError
from repro.xpath.parser import parse_xpath


def _load_dtd(args):
    if args.sample:
        return {"nitf": nitf_dtd, "psd": psd_dtd}[args.sample]()
    if not args.dtd_file:
        raise SystemExit("error: provide a DTD file or --sample nitf|psd")
    with open(args.dtd_file) as handle:
        return parse_dtd(handle.read())


def _add_faults_option(parser):
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject link faults with the reliability layer engaged, "
        "e.g. 'drop=0.1,dup=0.05,seed=7' (see "
        "repro.network.faults.FaultPlan.from_spec)",
    )


def _add_engine_option(parser):
    parser.add_argument(
        "--engine",
        choices=MATCHING_ENGINES,
        default="auto",
        help="publication-matching backend on every broker: 'auto' "
        "matches through the routing table itself, 'shared' layers the "
        "shared-automaton mass-subscription engine over it, 'sharded' "
        "partitions that engine by root element with per-shard caches "
        "and parallel probes (see docs/matching.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="root-shard count for --engine sharded (default 4; "
        "ignored by the other engines)",
    )


def _add_views_option(parser):
    parser.add_argument(
        "--views",
        action="store_true",
        help="keep edge materialized views of hot delivery groups and "
        "serve repeat publications (and late subscribers, via window "
        "replay) from them instead of re-routing through the core "
        "(see docs/views.md)",
    )


def _add_dtd_options(parser):
    parser.add_argument("dtd_file", nargs="?", help="path to a DTD file")
    parser.add_argument(
        "--sample",
        choices=("nitf", "psd"),
        help="use a bundled sample DTD instead of a file",
    )


def cmd_adverts(args) -> int:
    dtd = _load_dtd(args)
    adverts = generate_advertisements(dtd)
    if args.stats:
        kinds = collections.Counter(advert.kind for advert in adverts)
        print("root element: %s" % dtd.root)
        print("recursive DTD: %s" % is_recursive(dtd))
        print("advertisements: %d" % len(adverts))
        for kind, count in sorted(kinds.items()):
            print("  %-20s %6d" % (kind, count))
    else:
        for advert in adverts:
            print(advert)
    return 0


def cmd_paths(args) -> int:
    dtd = _load_dtd(args)
    for path in enumerate_paths(dtd, max_depth=args.max_depth):
        print("/" + "/".join(path))
    return 0


def cmd_workload(args) -> int:
    from repro.workloads.xpath_generator import (
        XPathWorkloadParams,
        generate_queries,
    )

    dtd = _load_dtd(args)
    params = XPathWorkloadParams(
        wildcard_prob=args.wildcard_prob,
        descendant_prob=args.descendant_prob,
        relative_prob=args.relative_prob,
        max_length=args.max_length,
    )
    for query in generate_queries(dtd, args.count, params=params, seed=args.seed):
        print(query)
    return 0


def cmd_match(args) -> int:
    expr = parse_xpath(args.xpe)
    path = tuple(part for part in args.path.strip("/").split("/") if part)
    matched = matches_path(expr, path)
    print("MATCH" if matched else "NO MATCH")
    return 0 if matched else 1


def cmd_covers(args) -> int:
    s1, s2 = parse_xpath(args.coverer), parse_xpath(args.covered)
    answer = covers(s1, s2)
    print("COVERS" if answer else "DOES NOT COVER")
    return 0 if answer else 1


def _parse_faults(args):
    """Turn the ``--faults SPEC`` option into a FaultPlan (or None)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.network.faults import FaultPlan

    return FaultPlan.from_spec(spec)


def cmd_simulate(args) -> int:
    from repro.experiments.tables23 import run_traffic_experiment

    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro import obs

        obs.enable_metrics(reset=True)
    strategies = [args.strategy] if args.strategy else None
    result = run_traffic_experiment(
        levels=args.levels,
        xpes_per_subscriber=args.xpes,
        documents=args.documents,
        strategies=strategies,
        seed=args.seed,
        check_delivery_equivalence=strategies is None,
        faults=_parse_faults(args),
        batching=args.batch,
        matching_engine=args.engine,
        shard_count=args.shards,
        views=args.views,
    )
    print(result.format())
    if metrics_out:
        obs.write_json(
            obs.get_registry(),
            metrics_out,
            meta={"command": "simulate", "levels": args.levels},
        )
        print("metrics written to %s" % metrics_out)
    return 0


def cmd_stats(args) -> int:
    """Run a quickstart-style workload with metrics on and emit the
    unified observability snapshot (traffic + delay + timings)."""
    import json

    from repro import obs
    from repro.experiments.tables23 import run_traffic_experiment

    obs.enable_metrics(reset=True)
    strategy = args.strategy or "with-Adv-with-CovPM"
    result = run_traffic_experiment(
        levels=args.levels,
        xpes_per_subscriber=args.xpes,
        documents=args.documents,
        strategies=[strategy],
        seed=args.seed,
        check_delivery_equivalence=False,
        faults=_parse_faults(args),
        batching=args.batch,
        matching_engine=args.engine,
        shard_count=args.shards,
        views=args.views,
        telemetry_interval=args.sample_every,
    )
    registry = obs.get_registry()
    meta = {
        "command": "stats",
        "levels": args.levels,
        "brokers": 2 ** args.levels - 1,
        "strategy": strategy,
        "xpes_per_subscriber": args.xpes,
        "documents": args.documents,
        "seed": args.seed,
    }
    if args.views:
        serves = registry.counter("views.serves").value
        misses = registry.counter("views.misses").value
        probes = serves + misses
        meta["views"] = {
            "serves": serves,
            "misses": misses,
            "hit_ratio": (serves / probes) if probes else 0.0,
        }
    if args.engine == "sharded":
        hits = registry.counter("matching.shard.cache.hits").value
        cache_misses = registry.counter("matching.shard.cache.misses").value
        lookups = hits + cache_misses
        meta["shards"] = {
            "probes": registry.counter("matching.shard.probes").value,
            "cache_hits": hits,
            "cache_misses": cache_misses,
            "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
            "rebalances": registry.counter("matching.shard.rebalances").value,
            "migrated_exprs": registry.counter(
                "matching.shard.migrated_exprs"
            ).value,
        }
    if args.format == "line":
        rendered = obs.to_line_protocol(registry)
    else:
        document = obs.snapshot_document(registry, meta=meta)
        rendered = json.dumps(document, indent=2, sort_keys=True)
    if args.views:
        print(
            "views: serves=%d misses=%d hit_ratio=%.3f"
            % (
                meta["views"]["serves"],
                meta["views"]["misses"],
                meta["views"]["hit_ratio"],
            )
        )
    if args.engine == "sharded":
        print(
            "shards: probes=%d cache_hit_ratio=%.3f rebalances=%d"
            % (
                meta["shards"]["probes"],
                meta["shards"]["cache_hit_ratio"],
                meta["shards"]["rebalances"],
            )
        )
    if args.sample_every is not None:
        document = result.telemetry[strategy]
        with open(args.timeline_out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            "telemetry timeline written to %s (%d samples, %d brokers; "
            "render with 'repro timeline %s')"
            % (
                args.timeline_out,
                document["samples_taken"],
                len(document["brokers"]) - 1,
                args.timeline_out,
            )
        )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print("metrics written to %s" % args.out)
    else:
        print(rendered)
    return 0


def cmd_top(args) -> int:
    """Live per-broker operational view on a real concurrency backend:
    drive a seeded workload round by round and refresh the health table
    (queue depth, throughput, retransmits, delivery p99) from the live
    telemetry plane after every round.  ``--overload BROKER`` slows one
    broker down so the healthy → degraded → overloaded escalation is
    watchable; ``--prom-port``/``--prom-textfile`` expose the same
    numbers to Prometheus (see docs/telemetry.md)."""
    import dataclasses
    import time as _time

    from repro import obs
    from repro.broker.messages import AdvertiseMsg, PublishMsg, SubscribeMsg
    from repro.obs.telemetry import (
        PrometheusEndpoint,
        default_slo_rules,
        render_top,
    )
    from repro.runtime.workload import PUBLISHER, WorkloadSpec, build_plan

    obs.enable_metrics(reset=True)
    registry = obs.get_registry()
    spec = WorkloadSpec(
        levels=args.levels,
        queries_per_leaf=args.queries,
        documents=2,
        seed=args.seed,
        strategy=args.strategy or "with-Adv-with-Cov",
    )
    plan = build_plan(spec)
    if args.overload and args.overload not in plan.broker_ids:
        raise SystemExit(
            "error: --overload %r is not one of the %d brokers (%s...)"
            % (args.overload, len(plan.broker_ids), plan.broker_ids[0])
        )

    if args.backend == "multiprocess":
        from repro.runtime.multiprocess import MultiprocessDeployment

        host = MultiprocessDeployment(
            config=spec.config(),
            service_delay=(
                {args.overload: args.overload_delay} if args.overload else None
            ),
        )
        for broker_id in plan.broker_ids:
            host.add_broker(broker_id)
        for a, b in plan.links:
            host.link(a, b)
        host.start()

        def quiesce():
            if not host.settle():
                raise ReproError("multiprocess deployment failed to settle")
            host.drain_deliveries()

        teardown = host.stop
    else:
        from repro.runtime.asyncio_backend import AsyncioRuntime

        host = AsyncioRuntime(
            config=spec.config(), metrics=registry, client_capacity=8
        )
        for broker_id in plan.broker_ids:
            host.add_broker(broker_id)
        for a, b in plan.links:
            host.connect(a, b)
        host.start()
        quiesce = host.drain
        teardown = host.close

    telemetry_kwargs = {}
    if args.queue_slo:
        try:
            low, high = (float(part) for part in args.queue_slo.split(","))
        except ValueError:
            print(
                "error: --queue-slo expects LOW,HIGH (e.g. 3,8)",
                file=sys.stderr,
            )
            return 2
        telemetry_kwargs["rules"] = default_slo_rules(
            queue_depth=(low, high)
        )
    plane = host.enable_telemetry(interval=args.interval, **telemetry_kwargs)
    endpoint = None
    try:
        host.attach_publisher(PUBLISHER, plan.broker_ids[0])
        for leaf in sorted(plan.subscriptions):
            host.attach_subscriber("sub-%s" % leaf, leaf)
        if args.backend == "asyncio" and args.overload:
            # The asyncio overload knob is a slow consumer: delay every
            # subscriber attached at the target broker.
            slowed = 0
            for leaf in plan.subscriptions:
                if leaf == args.overload:
                    host.client_delay["sub-%s" % leaf] = args.overload_delay
                    slowed += 1
            if not slowed:
                print(
                    "note: --overload %s has no local subscribers on the "
                    "asyncio backend (pick a leaf broker)" % args.overload
                )
        if args.prom_port is not None or args.prom_textfile:
            endpoint = PrometheusEndpoint(
                registry,
                plane,
                port=args.prom_port or 0,
                textfile=args.prom_textfile,
            )
            if args.prom_port is not None:
                endpoint.start()
                print("prometheus endpoint at %s" % endpoint.url)

        for adv_id, advert in plan.adverts:
            host.submit(
                PUBLISHER,
                AdvertiseMsg(
                    adv_id=adv_id, advert=advert, publisher_id=PUBLISHER
                ),
            )
        quiesce()
        for leaf in sorted(plan.subscriptions):
            client_id = "sub-%s" % leaf
            for expr in plan.subscriptions[leaf]:
                host.submit(
                    client_id, SubscribeMsg(expr=expr, subscriber_id=client_id)
                )
        quiesce()

        for round_no in range(args.rounds):
            started = _time.monotonic()
            for document in plan.documents:
                size = document.size_bytes()
                issued_at = host.now
                for publication in document.publications():
                    # Fresh doc ids per round keep the delivery stream
                    # (and its p99) live past client-side dedup.
                    host.submit(
                        PUBLISHER,
                        PublishMsg(
                            publication=dataclasses.replace(
                                publication,
                                doc_id="%s.r%d"
                                % (publication.doc_id, round_no),
                            ),
                            publisher_id=PUBLISHER,
                            doc_size_bytes=size,
                            issued_at=issued_at,
                        ),
                    )
            quiesce()
            host.sample_telemetry()
            frame = render_top(plane, now=host.now)
            if not args.plain and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print("round %d/%d (%.2fs)" % (
                round_no + 1, args.rounds, _time.monotonic() - started
            ))
            print(frame)
            if endpoint is not None:
                endpoint.write()

        health = plane.health()
        worst = sorted(set(health.values()))
        print(
            "final health: %s (%d transitions, alerts: %s)"
            % (
                ", ".join(
                    "%s=%s" % (b, s) for b, s in sorted(health.items())
                ),
                len(plane.monitor.transitions),
                dict(plane.monitor.alerts) or "none",
            )
        )
        if args.timeline:
            path = plane.write_timeline(
                args.timeline,
                meta={
                    "command": "top",
                    "backend": args.backend,
                    "levels": args.levels,
                    "rounds": args.rounds,
                    "overload": args.overload,
                    "seed": args.seed,
                },
            )
            print("telemetry timeline written to %s" % path)
        return 0 if worst in ([], ["healthy"]) or args.overload else 1
    finally:
        if endpoint is not None:
            endpoint.close()
        teardown()


def cmd_timeline(args) -> int:
    """Render a recorded telemetry timeline (``repro stats
    --sample-every`` / ``repro top --timeline``) as per-broker health
    plus a sparkline trend of one sampled metric."""
    from repro.obs.telemetry import load_timeline, render_timeline

    document = load_timeline(args.file)
    print(
        render_timeline(
            document,
            metric=args.metric,
            broker=args.broker,
            width=args.width,
        )
    )
    return 0


AUDIT_SCENARIOS = (
    "fault-free",
    "drop-only",
    "duplicate-only",
    "reorder-only",
    "partition-heals",
    "crash-restart",
)


def cmd_audit(args) -> int:
    """Run the routing-state audit over the chaos scenario matrix and
    exit nonzero when any invariant is violated (see docs/audit.md)."""
    from repro.audit import audit_scenarios, run_audited_workload

    scenarios = audit_scenarios(args.seed)
    names = (
        list(AUDIT_SCENARIOS) if args.scenario == "all" else [args.scenario]
    )
    failures = 0
    for name in names:
        _, _, report = run_audited_workload(
            plan=scenarios[name],
            levels=args.levels,
            xpes_per_leaf=args.xpes,
            documents=args.documents,
            max_degree=args.max_degree,
            merge_interval=args.merge_interval,
            seed=args.seed + 3,
            matching_engine=args.engine,
            shard_count=args.shards,
            views=args.views,
        )
        status = "OK" if report.ok else "FAIL"
        print(
            "%-16s %-4s  soundness=%d unexplained_fp=%d explained_fp=%d"
            % (
                name,
                status,
                len(report.soundness),
                len(report.unexplained_fp),
                len(report.explained_fp),
            )
        )
        if not report.ok:
            failures += 1
            for violation in report.soundness + report.unexplained_fp:
                print("  " + str(violation))
    if failures:
        print(
            "audit FAILED: %d of %d scenarios violated (seed=%d)"
            % (failures, len(names), args.seed)
        )
        return 1
    print("audit OK: %d scenarios clean (seed=%d)" % (len(names), args.seed))
    return 0


def cmd_trace(args) -> int:
    """Run the chaos matrix with causal tracing on, verify that every
    delivery tree is causally complete and its per-stage span sum stays
    within the recorded end-to-end latency, and optionally export the
    spans (Chrome trace JSON / Prometheus text) or dump flight rings."""
    import json

    from repro import obs
    from repro.audit import audit_scenarios, run_audited_workload
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import verify_traces

    scenarios = audit_scenarios(args.seed)
    names = (
        list(AUDIT_SCENARIOS) if args.scenario == "all" else [args.scenario]
    )
    stage_registry = MetricsRegistry(enabled=True)
    all_spans = []
    failures = 0
    for name in names:
        overlay, _, report = run_audited_workload(
            plan=scenarios[name],
            levels=args.levels,
            xpes_per_leaf=args.xpes,
            documents=args.documents,
            seed=args.seed + 3,
            tracing=True,
            flight_dir=args.flight_dump,
        )
        recorder = overlay.tracing
        problems = verify_traces(overlay)
        trees = recorder.assemble()
        complete = sum(1 for tree in trees.values() if tree.complete)
        status = "OK" if report.ok and not problems else "FAIL"
        print(
            "%-16s %-4s  spans=%6d traces=%4d complete=%4d "
            "deliveries=%4d audit=%s problems=%d"
            % (
                name,
                status,
                len(recorder),
                len(trees),
                complete,
                len(overlay.stats.deliveries),
                "OK" if report.ok else "FAIL",
                len(problems),
            )
        )
        for problem in problems:
            print("  " + problem)
        if not report.ok or problems:
            failures += 1
        if args.follow:
            followed = recorder.trees_for_doc(args.follow)
            if not followed:
                print("  no trace touched document %r" % args.follow)
            for tree in followed:
                print(tree.render())
        if args.last:
            for broker_id in sorted(recorder.flight.recorders, key=str):
                ring = recorder.flight.recorders[broker_id]
                spans = ring.spans()[-args.last:]
                print("  flight ring %s (last %d of %d):"
                      % (broker_id, len(spans), len(ring)))
                for span in spans:
                    print("    %r" % span)
        if args.flight_dump:
            dump = recorder.flight.dump(
                "cli-%s" % name, time=overlay.sim.now
            )
            print("  flight dump: %s" % dump.get("path", "in-memory"))
        recorder.publish_stage_metrics(stage_registry)
        all_spans.extend(recorder.spans)

    print("\nper-stage latency decomposition (virtual seconds):")
    print("%-28s %8s %12s %12s %12s" % ("stage", "count", "p50", "p95", "p99"))
    for kind, metric, instrument in sorted(
        stage_registry.iter_metrics(), key=lambda item: item[1]
    ):
        if kind != "histogram" or not metric.startswith("trace.stage."):
            continue
        stats = instrument.snapshot()
        print(
            "%-28s %8d %12.9f %12.9f %12.9f"
            % (
                metric[len("trace.stage."):],
                stats["count"],
                stats["p50"] or 0.0,
                stats["p95"] or 0.0,
                stats["p99"] or 0.0,
            )
        )

    if args.export:
        out = args.out or (
            "trace-export.json" if args.export == "chrome"
            else "trace-export.prom"
        )
        if args.export == "chrome":
            with open(out, "w") as handle:
                json.dump(obs.to_chrome_trace(all_spans), handle, indent=1)
                handle.write("\n")
        else:
            with open(out, "w") as handle:
                handle.write(obs.to_prometheus(stage_registry))
        print("%s export written to %s" % (args.export, out))

    if failures:
        print(
            "trace verification FAILED: %d of %d scenarios (seed=%d)"
            % (failures, len(names), args.seed)
        )
        return 1
    print(
        "trace verification OK: %d scenarios, %d spans (seed=%d)"
        % (len(names), len(all_spans), args.seed)
    )
    return 0


def cmd_deploy(args) -> int:
    """Run a seeded workload on a real concurrency backend — the
    asyncio runtime or the one-process-per-broker socket deployment —
    and (by default) differentially compare it against the simulator
    on the same seed: identical delivered sets, clean audit, causally
    complete traces, and (when the subscription phase is serialized)
    identical routing fingerprints.  See docs/runtime.md."""
    import dataclasses
    import json
    import os

    from repro.audit.oracle import AuditOracle
    from repro.runtime.workload import (
        ADAPTERS,
        WorkloadSpec,
        build_plan,
        run_workload,
    )

    spec = WorkloadSpec(
        levels=args.levels,
        queries_per_leaf=args.queries,
        documents=args.documents,
        seed=args.seed,
        strategy=args.strategy or "with-Adv-with-Cov",
        matching_engine=args.engine,
        shard_count=args.shards,
        views=args.views,
        serialize_subscriptions=not args.no_serialize,
    )
    plan = build_plan(spec)
    broker_count = len(plan.broker_ids)
    print(
        "deploy: %d brokers (levels=%d), %d subscriptions, %d documents, "
        "seed=%d, backend=%s"
        % (
            broker_count,
            spec.levels,
            sum(len(v) for v in plan.subscriptions.values()),
            spec.documents,
            spec.seed,
            args.backend,
        )
    )

    backend_cls = ADAPTERS[args.backend]
    adapter = (
        backend_cls(tracing=True)
        if args.backend == "asyncio"
        else backend_cls()
    )
    auditor = AuditOracle() if args.audit else None
    result = run_workload(adapter, spec, plan, auditor=auditor)
    print(
        "%-12s delivered=%d audit_problems=%d trace_problems=%d"
        % (
            result.backend,
            len(result.delivered),
            len(result.audit_problems),
            len(result.trace_problems),
        )
    )
    for key, value in sorted(result.extras.items()):
        if key != "max_queue_depth":
            print("  %s: %s" % (key, value))

    problems = []
    if result.audit_problems:
        problems.append("audit: %d violations" % len(result.audit_problems))
    if result.trace_problems:
        problems.append(
            "tracing: %d incomplete causal chains" % len(result.trace_problems)
        )

    reference = None
    if not args.no_compare:
        reference = run_workload(
            ADAPTERS["simulator"](),
            spec,
            plan,
            auditor=AuditOracle() if args.audit else None,
        )
        delivered_ok = result.delivered == reference.delivered
        print(
            "%-12s delivered=%d  delivered_equal=%s"
            % (reference.backend, len(reference.delivered), delivered_ok)
        )
        if not delivered_ok:
            problems.append(
                "delivered sets differ: backend-only=%d simulator-only=%d"
                % (
                    len(result.delivered - reference.delivered),
                    len(reference.delivered - result.delivered),
                )
            )
        if spec.serialize_subscriptions:
            diverged = sorted(
                broker_id
                for broker_id in reference.fingerprints
                if result.fingerprints.get(broker_id)
                != reference.fingerprints[broker_id]
            )
            print(
                "fingerprints: %d/%d brokers identical"
                % (broker_count - len(diverged), broker_count)
            )
            if diverged:
                problems.append(
                    "routing fingerprints diverge on %d brokers: %s"
                    % (len(diverged), ", ".join(diverged[:8]))
                )
        else:
            print(
                "fingerprints: skipped (--no-serialize makes covering "
                "tables arrival-order-dependent; deliveries still compared)"
            )

    if args.dump and (problems or args.dump_always):
        dump = {
            "spec": dataclasses.asdict(spec),
            "problems": problems,
            "backend": {
                "name": result.backend,
                "delivered": sorted(map(list, result.delivered)),
                "fingerprints": result.fingerprints,
                "audit_problems": result.audit_problems,
                "trace_problems": result.trace_problems,
                "extras": {
                    k: v for k, v in result.extras.items() if k != "network_traffic"
                },
            },
        }
        if reference is not None:
            dump["simulator"] = {
                "delivered": sorted(map(list, reference.delivered)),
                "fingerprints": reference.fingerprints,
            }
        os.makedirs(args.dump, exist_ok=True)
        path = os.path.join(args.dump, "deploy-diagnostics.json")
        with open(path, "w") as handle:
            json.dump(dump, handle, indent=1, default=str)
        print("diagnostics written to %s" % path)

    if problems:
        print("deploy FAILED:")
        for problem in problems:
            print("  " + problem)
        return 1
    print("deploy OK")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    forwarded = []
    if args.scale != 1.0:
        forwarded.extend(["--scale", str(args.scale)])
    if args.metrics_out:
        forwarded.extend(["--metrics-out", args.metrics_out])
    if args.only:
        forwarded.append("--only")
        forwarded.extend(args.only)
    if args.faults:
        forwarded.extend(["--faults", args.faults])
    return experiments_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML/XPath data dissemination network (ICDCS 2008 reproduction)",
    )
    parser.add_argument(
        "--no-compiled",
        action="store_true",
        help="disable the compiled XPE fast path and run the reference "
        "interpreter (equivalent to REPRO_COMPILED=0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("adverts", help="derive a DTD's advertisement set")
    _add_dtd_options(p)
    p.add_argument("--stats", action="store_true", help="summary only")
    p.set_defaults(fn=cmd_adverts)

    p = sub.add_parser("paths", help="enumerate a DTD's root-to-leaf paths")
    _add_dtd_options(p)
    p.add_argument("--max-depth", type=int, default=10)
    p.set_defaults(fn=cmd_paths)

    p = sub.add_parser("workload", help="generate an XPath query workload")
    _add_dtd_options(p)
    p.add_argument("-n", "--count", type=int, default=20)
    p.add_argument("--wildcard-prob", type=float, default=0.2)
    p.add_argument("--descendant-prob", type=float, default=0.15)
    p.add_argument("--relative-prob", type=float, default=0.2)
    p.add_argument("--max-length", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_workload)

    p = sub.add_parser("match", help="match an XPE against a path")
    p.add_argument("xpe")
    p.add_argument("path", help="e.g. /a/b/c")
    p.set_defaults(fn=cmd_match)

    p = sub.add_parser("covers", help="covering check between two XPEs")
    p.add_argument("coverer")
    p.add_argument("covered")
    p.set_defaults(fn=cmd_covers)

    p = sub.add_parser("simulate", help="run an overlay traffic experiment")
    p.add_argument("--levels", type=int, default=3)
    p.add_argument("--xpes", type=int, default=100)
    p.add_argument("--documents", type=int, default=10)
    p.add_argument("--strategy", choices=RoutingConfig.ALL_NAMES)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="enable metrics and write the JSON snapshot here",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="publish each document's paths as one batch "
        "(Overlay.submit_batch)",
    )
    _add_engine_option(p)
    _add_views_option(p)
    _add_faults_option(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "stats",
        help="run a small workload with metrics enabled and print the "
        "observability snapshot",
    )
    p.add_argument("--levels", type=int, default=3, help="broker tree depth")
    p.add_argument("--xpes", type=int, default=50)
    p.add_argument("--documents", type=int, default=10)
    p.add_argument("--strategy", choices=RoutingConfig.ALL_NAMES)
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--out", metavar="FILE", default=None)
    p.add_argument("--format", choices=("json", "line"), default="json")
    p.add_argument(
        "--batch",
        action="store_true",
        help="publish each document's paths as one batch "
        "(Overlay.submit_batch)",
    )
    p.add_argument(
        "--sample-every",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="sample_every",
        help="turn on the live telemetry plane and sample every broker "
        "at this virtual-clock period, writing the timeline to "
        "--timeline-out (see docs/telemetry.md)",
    )
    p.add_argument(
        "--timeline-out",
        metavar="FILE",
        default="telemetry-timeline.json",
        help="destination of the --sample-every timeline (default "
        "telemetry-timeline.json; render with 'repro timeline')",
    )
    _add_engine_option(p)
    _add_views_option(p)
    _add_faults_option(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "top",
        help="live per-broker health/telemetry table while a workload "
        "runs on a real concurrency backend",
    )
    p.add_argument(
        "--backend",
        choices=("asyncio", "multiprocess"),
        default="asyncio",
    )
    p.add_argument("--levels", type=int, default=3, help="broker tree depth")
    p.add_argument(
        "--queries", type=int, default=2, help="subscriptions per leaf"
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="publish rounds (one table refresh per round)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--strategy", choices=RoutingConfig.ALL_NAMES)
    p.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="telemetry sampling period, wall seconds",
    )
    p.add_argument(
        "--overload",
        metavar="BROKER",
        default=None,
        help="slow this broker down (multiprocess: dispatcher service "
        "delay; asyncio: its local subscribers consume slowly) so the "
        "health escalation is watchable",
    )
    p.add_argument(
        "--overload-delay",
        type=float,
        default=0.01,
        help="per-message delay, seconds, for --overload (default 0.01)",
    )
    p.add_argument(
        "--queue-slo",
        metavar="LOW,HIGH",
        default=None,
        help="override the queue-depth SLO thresholds "
        "(degraded,overloaded) — pair with --overload so the demo "
        "escalation crosses them on small workloads",
    )
    p.add_argument(
        "--plain",
        action="store_true",
        help="never clear the screen between refreshes",
    )
    p.add_argument(
        "--timeline",
        metavar="FILE",
        default=None,
        help="also record the run's telemetry timeline here",
    )
    p.add_argument(
        "--prom-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics on 127.0.0.1:PORT while running "
        "(0 picks an ephemeral port)",
    )
    p.add_argument(
        "--prom-textfile",
        metavar="FILE",
        default=None,
        help="atomically rewrite a node-exporter-style textfile after "
        "every round",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "timeline",
        help="render a recorded telemetry timeline (from 'repro stats "
        "--sample-every' or 'repro top --timeline')",
    )
    p.add_argument("file", help="telemetry-timeline.json path")
    p.add_argument(
        "--metric",
        default=None,
        help="sampled metric to trend (default: queue_depth or the "
        "busiest recorded metric)",
    )
    p.add_argument(
        "--broker", default=None, help="restrict the table to one broker"
    )
    p.add_argument(
        "--width", type=int, default=60, help="sparkline width, columns"
    )
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser(
        "audit",
        help="routing-state audit: oracle + invariant checker over the "
        "chaos scenario matrix",
    )
    p.add_argument(
        "--scenario",
        default="all",
        choices=("all",) + AUDIT_SCENARIOS,
        help="one scenario, or 'all' for the full matrix",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--levels", type=int, default=3, help="broker tree depth")
    p.add_argument("--xpes", type=int, default=12, help="XPEs per leaf")
    p.add_argument("--documents", type=int, default=5)
    p.add_argument("--max-degree", type=float, default=0.1)
    p.add_argument("--merge-interval", type=int, default=4)
    _add_engine_option(p)
    _add_views_option(p)
    p.set_defaults(fn=cmd_audit)

    p = sub.add_parser(
        "trace",
        help="causal tracing: run the chaos matrix with tracing on, "
        "verify delivery trees, export spans, dump flight rings",
    )
    p.add_argument(
        "--scenario",
        default="fault-free",
        choices=("all",) + AUDIT_SCENARIOS,
        help="one scenario, or 'all' for the full matrix",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--levels", type=int, default=3, help="broker tree depth")
    p.add_argument("--xpes", type=int, default=12, help="XPEs per leaf")
    p.add_argument("--documents", type=int, default=5)
    p.add_argument(
        "--follow",
        metavar="DOC_ID",
        default=None,
        help="render the delivery tree of every trace touching this document",
    )
    p.add_argument(
        "--export",
        choices=("chrome", "prom"),
        default=None,
        help="write spans as Chrome trace-event JSON (load in Perfetto) "
        "or the stage histograms as Prometheus text",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="export destination (default trace-export.json/.prom)",
    )
    p.add_argument(
        "--flight-dump",
        metavar="DIR",
        default=None,
        help="write flight-recorder dumps (automatic and end-of-run) here",
    )
    p.add_argument(
        "--last",
        type=int,
        default=0,
        metavar="N",
        help="also print the last N flight-ring spans per broker",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "deploy",
        help="run the overlay on a real concurrency backend (asyncio or "
        "one process per broker over sockets) and differentially "
        "compare it with the simulator",
    )
    p.add_argument(
        "--backend",
        choices=("asyncio", "multiprocess"),
        default="multiprocess",
    )
    p.add_argument(
        "--levels",
        type=int,
        default=7,
        help="broker tree depth (7 = the paper's 127-broker overlay)",
    )
    p.add_argument(
        "--queries", type=int, default=2, help="subscriptions per leaf"
    )
    p.add_argument("--documents", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--strategy", choices=RoutingConfig.ALL_NAMES)
    p.add_argument(
        "--audit",
        action="store_true",
        help="attach the routing-state audit oracle to the run",
    )
    p.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the simulator reference run",
    )
    p.add_argument(
        "--no-serialize",
        action="store_true",
        help="do not quiesce between per-leaf subscription batches; "
        "faster, but covering tables become arrival-order-dependent so "
        "fingerprint comparison is skipped",
    )
    p.add_argument(
        "--dump",
        metavar="DIR",
        default=None,
        help="write a JSON diagnostics dump here when the run fails "
        "(CI artifact)",
    )
    p.add_argument(
        "--dump-always",
        action="store_true",
        help="write the diagnostics dump even on success",
    )
    _add_engine_option(p)
    _add_views_option(p)
    p.set_defaults(fn=cmd_deploy)

    p = sub.add_parser("experiments", help="reproduce the paper's tables/figures")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--only", nargs="*", default=None)
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="enable metrics and write the JSON snapshot here",
    )
    _add_faults_option(p)
    p.set_defaults(fn=cmd_experiments)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_compiled:
        from repro.xpath.compiled import set_compiled_enabled

        set_compiled_enabled(False)
    try:
        return args.fn(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
