"""Audited chaos workloads: the scenario matrix behind ``repro audit``.

:func:`run_audited_workload` runs the Tables-2-style workload on the
paper's 7-broker binary tree — advertise, subscribe, publish, forced
merge sweeps, a deterministic unsubscribe wave, and a second publish
round — with an :class:`~repro.audit.oracle.AuditOracle` attached from
the first message.  Every phase drains the overlay, so the oracle's
submit-time delivery snapshots are exact.  :func:`audit_scenarios`
parameterizes the chaos matrix (fault-free plus the five fault classes
of tests/test_chaos_convergence.py) on one seed, which is how the CI
audit job explores fresh schedules while keeping failures replayable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.audit.oracle import AuditOracle, AuditReport
from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network.faults import CrashEvent, FaultPlan, LinkFaults, Partition
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def audit_scenarios(seed: int = 0) -> Dict[str, Optional[FaultPlan]]:
    """The chaos matrix, keyed by scenario name (None = fault-free)."""
    return {
        "fault-free": None,
        "drop-only": FaultPlan(
            seed=seed + 11, default=LinkFaults(drop=0.2), rto=0.01
        ),
        "duplicate-only": FaultPlan(
            seed=seed + 12, default=LinkFaults(duplicate=0.2), rto=0.01
        ),
        "reorder-only": FaultPlan(
            seed=seed + 13,
            default=LinkFaults(reorder=0.3, reorder_window=0.01),
            rto=0.05,
        ),
        "partition-heals": FaultPlan(
            seed=seed + 14,
            partitions=(Partition("b1", "b3", 0.0, 0.5),),
            rto=0.01,
        ),
        "crash-restart": FaultPlan(
            seed=seed + 15,
            default=LinkFaults(drop=0.1),
            crashes=(CrashEvent("b2", at=0.002, restart_at=0.2),),
            rto=0.01,
        ),
    }


def run_audited_workload(
    plan: Optional[FaultPlan] = None,
    levels: int = 3,
    xpes_per_leaf: int = 12,
    documents: int = 5,
    max_degree: float = 0.1,
    merge_interval: int = 4,
    seed: int = 3,
    config: Optional[RoutingConfig] = None,
    metrics=None,
    check: bool = True,
    tracing: bool = False,
    flight_dir: Optional[str] = None,
    matching_engine: str = "auto",
    shard_count: int = 4,
    views: bool = False,
    view_hot_threshold: int = 3,
):
    """Run the audited workload; returns ``(overlay, oracle, report)``.

    ``report`` is None when *check* is False (callers that want to keep
    mutating the overlay before auditing, e.g. the stateful suite).
    With *tracing* the overlay stamps every operation with a causal
    trace context before any traffic flows (``flight_dir`` is where
    automatic flight-recorder dumps land; see :mod:`repro.obs.flight`).
    ``matching_engine`` selects every broker's publication-matching
    backend, auditing the overlay's six invariants against it.  With
    *views* every edge broker keeps materialized views of hot delivery
    groups (see :mod:`repro.views`); the oracle then also classifies
    view-served and replayed deliveries.
    """
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    if config is None:
        config = RoutingConfig.with_adv_with_cov_ipm(
            max_imperfect_degree=max_degree, merge_interval=merge_interval
        )
    if config.matching_engine != matching_engine:
        config = replace(config, matching_engine=matching_engine)
    if config.shard_count != shard_count:
        config = replace(config, shard_count=shard_count)
    if config.views != views or config.view_hot_threshold != view_hot_threshold:
        config = replace(
            config, views=views, view_hot_threshold=view_hot_threshold
        )
    overlay = Overlay.binary_tree(
        levels,
        config=config,
        latency_model=ConstantLatency(0.001),
        universe=universe,
        processing_scale=0.0,
        metrics=metrics,
        faults=plan,
    )
    if tracing:
        overlay.enable_tracing(flight_dir=flight_dir)
    oracle = overlay.attach_auditor(AuditOracle())

    publisher = overlay.attach_publisher("pub", "b1")
    publisher.advertise_dtd(dtd)
    overlay.run()

    subscribers = []
    for index, leaf in enumerate(overlay.leaf_brokers()):
        subscriber = overlay.attach_subscriber("sub%d" % index, leaf)
        for expr in psd_queries(xpes_per_leaf, seed=100 + index).exprs:
            subscriber.subscribe(expr)
        subscribers.append(subscriber)
    overlay.run()

    for document in generate_documents(
        dtd, documents, seed=seed, target_bytes=800
    ):
        publisher.publish_document(document)
    overlay.run()

    # Force a sweep everywhere so mergers exist regardless of whether the
    # subscription count tripped the periodic cadence on a given broker.
    for broker_id in sorted(overlay.brokers):
        if not overlay.is_down(broker_id):
            overlay.trigger_merge_sweep(broker_id)
        overlay.run()

    # The unsubscribe wave: retract every other subscription (sorted, so
    # the same seed always retracts the same half) — the churn that
    # exposed the unsubscribe/merge leak.
    for subscriber in subscribers:
        for expr in sorted(subscriber.subscriptions, key=str)[::2]:
            subscriber.unsubscribe(expr)
    overlay.run()

    # Second publish round under the post-churn, post-merge tables.
    for document in generate_documents(
        dtd, documents, seed=seed + 1, target_bytes=800, doc_prefix="doc2"
    ):
        publisher.publish_document(document)
    overlay.run()

    report = oracle.check() if check else None
    return overlay, oracle, report


def run_audit_matrix(
    seed: int = 0, scenarios=None, **kwargs
) -> Dict[str, AuditReport]:
    """Run :func:`run_audited_workload` over the scenario matrix."""
    matrix = audit_scenarios(seed)
    if scenarios:
        matrix = {name: matrix[name] for name in scenarios}
    reports = {}
    for name, plan in matrix.items():
        _, _, report = run_audited_workload(plan=plan, **kwargs)
        reports[name] = report
    return reports
