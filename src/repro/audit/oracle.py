"""The routing-state audit oracle.

The oracle keeps a *flat, centralized* view of the ground truth the
distributed protocol is supposed to maintain: which (client, XPE) pairs
are live, which advertisements stand, and — per submitted publication —
which clients must receive it.  :meth:`AuditOracle.check` then walks the
overlay at a quiescent point and verifies six invariants:

1. **Delivery soundness** — every publication reached exactly the
   clients whose live subscriptions matched it at submit time.
2. **Representation** — for every live (client, XPE) pair, every broker
   on the path from each relevant publisher stores *some* expression
   covering the XPE, keyed toward the subscriber.  Valid because the
   merging rules only ever produce coverers and covering is transitive.
3. **No garbage** — every stored (expression, hop) entry is justified by
   a live subscription behind that hop which the expression covers.  An
   unjustified entry whose expression sits in the broker's merger
   registry is a *leaked merger* (the unsubscribe/merge bug class).
4. **Forwarded agreement** — per directed link, the sender's forwarding
   marks and the receiver's table entries agree, modulo constituents the
   receiver merged away (mark without entry) and mergers the receiver
   built locally (entry without mark).
5. **Path probes** — publications are walked hop by hop through the live
   ``_publish_destinations`` path (so match caches are exercised too);
   a hop no live subscription needs is a false positive, *explained*
   only if attributable to a live merger.
6. **Degree budget** — every recorded merge event's ``D_imperfect``
   against the path universe stays within the configured budget.

Violations are classified as ``soundness`` (a delivery can be missed),
``unexplained_fp`` (extra traffic not attributable to an imperfect
merger within budget), or ``explained_fp`` (informational: the paper's
sanctioned imperfection).

Accuracy contract: expected delivery sets are snapshotted when the
publication is *submitted*, so the harness must submit publications at
quiescent points (drain the overlay between subscription churn and
publishing) for the delivery check to be exact.  The structural checks
(2–6) are independent of submit timing.  A broker recovered *without*
state (``with_state=False``) legitimately forgets routing state — the
oracle records the event and skips the structural checks, since that
degraded mode is documented behaviour, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.messages import (
    AdvertiseMsg,
    Message,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.covering.algorithms import covers
from repro.covering.pathmatch import matches_path
from repro.xmldoc.document import Publication
from repro.xpath.ast import WILDCARD, XPathExpr

SOUNDNESS = "soundness"
UNEXPLAINED_FP = "unexplained_fp"
EXPLAINED_FP = "explained_fp"


@dataclass(frozen=True)
class Violation:
    """One divergence between the overlay and the reference state."""

    kind: str  # SOUNDNESS / UNEXPLAINED_FP / EXPLAINED_FP
    code: str  # e.g. "missed-delivery", "leaked-merger", "stale-entry"
    broker_id: str  # "" for network-level violations
    detail: str
    #: Causal trace ids of the operations behind this violation (filled
    #: when the overlay runs with tracing enabled) — the exact traces to
    #: replay or look up in a flight-recorder dump.
    trace_ids: Tuple[str, ...] = ()

    def __str__(self):
        where = " at %s" % self.broker_id if self.broker_id else ""
        traces = (
            " [trace %s]" % ", ".join(self.trace_ids) if self.trace_ids else ""
        )
        return "[%s] %s%s: %s%s" % (
            self.kind, self.code, where, self.detail, traces
        )


@dataclass
class AuditReport:
    """Outcome of one :meth:`AuditOracle.check` pass."""

    soundness: List[Violation] = field(default_factory=list)
    unexplained_fp: List[Violation] = field(default_factory=list)
    explained_fp: List[Violation] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No soundness violations and no unexplained false positives
        (explained imperfections are the paper's sanctioned trade-off)."""
        return not self.soundness and not self.unexplained_fp

    def add(self, violation: Violation):
        {
            SOUNDNESS: self.soundness,
            UNEXPLAINED_FP: self.unexplained_fp,
            EXPLAINED_FP: self.explained_fp,
        }[violation.kind].append(violation)

    def summary(self) -> str:
        lines = [
            "audit: %d soundness, %d unexplained FP, %d explained FP -- %s"
            % (
                len(self.soundness),
                len(self.unexplained_fp),
                len(self.explained_fp),
                "OK" if self.ok else "VIOLATIONS",
            )
        ]
        for violation in self.soundness + self.unexplained_fp:
            lines.append("  " + str(violation))
        for key, value in sorted(self.info.items()):
            lines.append("  info: %s = %s" % (key, value))
        return "\n".join(lines)


@dataclass(frozen=True)
class PubRecord:
    """One submitted publication with its submit-time expected clients."""

    publisher_id: str
    doc_id: str
    path_id: int
    path: Tuple[str, ...]
    attributes: object
    expected: frozenset
    #: the publication's causal trace ("" when tracing is off)
    trace_id: str = ""


def advert_matches_path(advert, path: Tuple[str, ...]) -> bool:
    """Is *path* a word of ``P(advert)``?  (Wildcard tests match any
    element name.)"""
    for word in advert.words_up_to(len(path)):
        if len(word) == len(path) and all(
            test == WILDCARD or test == name
            for test, name in zip(word, path)
        ):
            return True
    return False


class AuditOracle:
    """Ground-truth registry + invariant checker for one overlay run.

    Attach with :meth:`Overlay.attach_auditor` *before* any client
    traffic is submitted; the overlay then feeds every submit, delivery
    and crash recovery into the oracle.  Call :meth:`check` at any
    quiescent point (it drains pending traffic first by default).
    """

    def __init__(self, probe_limit: int = 150):
        self._overlay = None
        self.probe_limit = probe_limit
        #: client -> live subscribed XPEs (the reference flat registry)
        self.live_subs: Dict[str, Set[XPathExpr]] = {}
        #: adv_id -> (advertisement, publisher client id)
        self.live_adverts: Dict[str, Tuple[object, str]] = {}
        #: submitted publications, first submission wins (clients
        #: deduplicate on (doc_id, path_id), so a re-submission of the
        #: same publication can never be delivered "again")
        self.publications: Dict[Tuple[str, int], PubRecord] = {}
        #: (doc_id, path_id) -> clients that received it (fresh only)
        self.delivered: Dict[Tuple[str, int], Set[str]] = {}
        #: (doc_id, path_id) -> clients served from an edge materialized
        #: view (docs/views.md).  A view-served delivery must land
        #: inside the submit-time expected set *exactly* — any excess is
        #: a soundness violation, because the serve path promises byte-
        #: identity with the core route.
        self.view_served: Dict[Tuple[str, int], Set[str]] = {}
        #: (doc_id, path_id) -> clients that received the publication
        #: via a view window replay.  Late subscribers are absent from
        #: the submit-time expected set by construction, so replays are
        #: judged at observe time (below) instead of against it.
        self.replayed: Dict[Tuple[str, int], Set[str]] = {}
        #: replays that matched no live subscription of the receiving
        #: client at delivery time — each becomes a soundness violation.
        self.replay_violations: List[Tuple[Tuple[str, int], str]] = []
        #: brokers that recovered without persisted state — documented
        #: degraded mode; structural checks are skipped once this is set
        self.stateless_recoveries: List[str] = []
        self.checks_run = 0

    # -- observation hooks (called by the Overlay) ------------------------

    def bind(self, overlay):
        self._overlay = overlay

    def observe_submit(self, client_id: str, message: Message):
        if isinstance(message, SubscribeMsg):
            self.live_subs.setdefault(client_id, set()).add(message.expr)
        elif isinstance(message, UnsubscribeMsg):
            exprs = self.live_subs.get(client_id)
            if exprs is not None:
                exprs.discard(message.expr)
                if not exprs:
                    del self.live_subs[client_id]
        elif isinstance(message, AdvertiseMsg):
            self.live_adverts[message.adv_id] = (message.advert, client_id)
        elif isinstance(message, UnadvertiseMsg):
            self.live_adverts.pop(message.adv_id, None)
        elif isinstance(message, PublishMsg):
            self._observe_publish(client_id, message)

    def _observe_publish(self, client_id: str, message: PublishMsg):
        publication = message.publication
        key = (publication.doc_id, publication.path_id)
        if key in self.publications:
            return
        if not self._publishable(client_id, publication.path):
            # The publisher never advertised this path; the protocol
            # makes no delivery promise for it.
            return
        attribute_maps = publication.attribute_maps()
        expected = frozenset(
            client
            for client, exprs in self.live_subs.items()
            if any(
                matches_path(expr, publication.path, attribute_maps)
                for expr in exprs
            )
        )
        context = getattr(message, "trace", None)
        self.publications[key] = PubRecord(
            publisher_id=client_id,
            doc_id=publication.doc_id,
            path_id=publication.path_id,
            path=publication.path,
            attributes=publication.attributes,
            expected=expected,
            trace_id=context.trace_id if context is not None else "",
        )

    def _publishable(self, publisher_id: str, path: Tuple[str, ...]) -> bool:
        if not self._overlay.config.advertisements:
            return True
        return any(
            advert_matches_path(advert, path)
            for advert, owner in self.live_adverts.values()
            if owner == publisher_id
        )

    def observe_delivery(
        self,
        client_id: str,
        message: PublishMsg,
        view: Optional[str] = None,
    ):
        publication = message.publication
        key = (publication.doc_id, publication.path_id)
        self.delivered.setdefault(key, set()).add(client_id)
        if view == "serve":
            self.view_served.setdefault(key, set()).add(client_id)
        elif view == "replay":
            self.replayed.setdefault(key, set()).add(client_id)
            # Judged now, not at check time: the legitimacy of a replay
            # is "the client held a matching subscription when the
            # window arrived", and live_subs moves on after this.
            attribute_maps = publication.attribute_maps()
            if not any(
                matches_path(expr, publication.path, attribute_maps)
                for expr in self.live_subs.get(client_id, ())
            ):
                self.replay_violations.append((key, client_id))

    def observe_recovery(self, broker_id: str, with_state: bool):
        if not with_state:
            self.stateless_recoveries.append(broker_id)

    # -- the checker -------------------------------------------------------

    def check(self, drain: bool = True) -> AuditReport:
        """Verify every invariant; returns the classified report."""
        overlay = self._overlay
        if overlay is None:
            raise RuntimeError("oracle is not attached to an overlay")
        if drain:
            overlay.run()
        self.checks_run += 1
        report = AuditReport()
        if self.stateless_recoveries:
            # with_state=False recovery legitimately forgets routing
            # state; structural comparisons against the full reference
            # would flag that documented degradation as bugs.
            report.info["degraded"] = (
                "stateless recovery of %s; structural checks skipped"
                % ",".join(self.stateless_recoveries)
            )
            self._check_deliveries(report)
            self._count(report)
            self._flight_dump_on_violation(report)
            return report
        self._check_deliveries(report)
        self._check_representation(report)
        self._check_stale_entries(report)
        self._check_forwarded_agreement(report)
        self._check_probes(report)
        self._check_merge_degrees(report)
        self._count(report)
        self._flight_dump_on_violation(report)
        return report

    def _flight_dump_on_violation(self, report: AuditReport):
        """Flight-recorder trigger: a failed audit snapshots every
        broker's span ring and records the offending trace ids, so the
        report names both the dump and the exact traces to replay."""
        tracing = getattr(self._overlay, "tracing", None)
        if tracing is None or report.ok:
            return
        offenders = sorted(
            {
                trace_id
                for violation in report.soundness + report.unexplained_fp
                for trace_id in violation.trace_ids
            }
        )
        if offenders:
            report.info["traces"] = ", ".join(offenders)
        dump = tracing.flight.dump(
            "audit-violation", time=self._overlay.sim.now
        )
        report.info["flight_dump"] = dump.get(
            "path", "in-memory #%d" % dump["sequence"]
        )

    def _count(self, report: AuditReport):
        metrics = self._overlay.metrics
        if not metrics.enabled:
            return
        metrics.counter("audit.checks").inc()
        metrics.counter("audit.violations.soundness").inc(
            len(report.soundness)
        )
        metrics.counter("audit.violations.unexplained_fp").inc(
            len(report.unexplained_fp)
        )
        metrics.counter("audit.explained_fp").inc(len(report.explained_fp))

    # -- invariant 1: delivery soundness ----------------------------------

    def _check_deliveries(self, report: AuditReport):
        if getattr(self._overlay.config, "views", False):
            report.info["view_served"] = sum(
                len(clients) for clients in self.view_served.values()
            )
            report.info["replayed"] = sum(
                len(clients) for clients in self.replayed.values()
            )
        for key, record in sorted(self.publications.items()):
            delivered = self.delivered.get(key, set())
            traces = (record.trace_id,) if record.trace_id else ()
            served = self.view_served.get(key, set())
            replayed = self.replayed.get(key, set())
            for client in sorted(record.expected - delivered):
                report.add(
                    Violation(
                        SOUNDNESS,
                        "missed-delivery",
                        "",
                        "%s never received %s#%d"
                        % (client, record.doc_id, record.path_id),
                        trace_ids=traces,
                    )
                )
            for client in sorted(delivered - record.expected):
                if client in served:
                    # The serve path claims byte-identity with the core
                    # route; delivering outside the expected set means
                    # the view memo diverged — a soundness bug, not a
                    # merging-induced false positive.
                    report.add(
                        Violation(
                            SOUNDNESS,
                            "view-false-positive",
                            "",
                            "%s was view-served %s#%d outside the "
                            "expected set"
                            % (client, record.doc_id, record.path_id),
                            trace_ids=traces,
                        )
                    )
                    continue
                if client in replayed:
                    # Late-subscriber replays are legitimately absent
                    # from the submit-time expected set; their own
                    # legitimacy check ran at observe time and any
                    # failure sits in replay_violations (below).
                    continue
                report.add(
                    Violation(
                        UNEXPLAINED_FP,
                        "client-false-positive",
                        "",
                        "%s received %s#%d without a matching subscription"
                        % (client, record.doc_id, record.path_id),
                        trace_ids=traces,
                    )
                )
        for key, client in self.replay_violations:
            report.add(
                Violation(
                    SOUNDNESS,
                    "view-replay-false-positive",
                    "",
                    "%s was replayed %s#%d without a matching live "
                    "subscription" % (client, key[0], key[1]),
                )
            )

    # -- topology helpers --------------------------------------------------

    def _adjacency(self) -> Dict[str, List[str]]:
        adjacency: Dict[str, List[str]] = {
            broker: [] for broker in self._overlay.brokers
        }
        for a, b in self._overlay.links:
            adjacency[a].append(b)
            adjacency[b].append(a)
        return adjacency

    def _home(self, client_id: str) -> str:
        return self._overlay._client_home[client_id]

    def _broker_path(
        self, adjacency, src: str, dst: str
    ) -> Optional[List[str]]:
        """The unique broker path from *src* to *dst* in the tree."""
        if src == dst:
            return [src]
        parents = {src: None}
        stack = [src]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor not in parents:
                    parents[neighbor] = current
                    if neighbor == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    stack.append(neighbor)
        return None

    def _clients_behind(
        self, adjacency, broker_id: str, hop: object
    ) -> Set[str]:
        """Live subscriber clients reachable through *hop* as seen from
        *broker_id* (a local client is behind its own hop)."""
        broker = self._overlay.brokers[broker_id]
        if hop in broker.local_clients:
            return {hop} if hop in self.live_subs else set()
        if hop not in adjacency.get(broker_id, ()):
            return set()
        component = {hop}
        stack = [hop]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor != broker_id and neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        return {
            client
            for client in self.live_subs
            if self._home(client) in component
        }

    def _stored(self, broker) -> Dict[XPathExpr, Set[object]]:
        return {
            expr: broker._keys_of(expr)
            for expr in broker._forwardable_exprs()
        }

    def _live_pairs(self) -> List[Tuple[str, XPathExpr]]:
        return [
            (client, expr)
            for client, exprs in sorted(self.live_subs.items())
            for expr in sorted(exprs, key=str)
        ]

    def _relevant_publishers(self, expr: XPathExpr) -> Set[str]:
        """Publishers whose live advertisements intersect *expr* (all
        publishers when advertisement-based routing is off)."""
        overlay = self._overlay
        if not overlay.config.advertisements:
            return set(overlay.publishers)
        from repro.adverts.recursive import expr_and_advertisement

        return {
            owner
            for advert, owner in self.live_adverts.values()
            if expr_and_advertisement(advert, expr)
        }

    def _global_mergers(self) -> Set[XPathExpr]:
        mergers: Set[XPathExpr] = set()
        for broker in self._overlay.brokers.values():
            if broker._merge_registry is not None:
                mergers.update(broker._merge_registry.mergers())
        return mergers

    # -- invariant 2: representation --------------------------------------

    def _check_representation(self, report: AuditReport):
        overlay = self._overlay
        adjacency = self._adjacency()
        stored = {
            broker_id: self._stored(broker)
            for broker_id, broker in overlay.brokers.items()
            if not overlay.is_down(broker_id)
        }
        for client, expr in self._live_pairs():
            home = self._home(client)
            for publisher in sorted(self._relevant_publishers(expr)):
                path = self._broker_path(
                    adjacency, self._home(publisher), home
                )
                if path is None:
                    continue
                for index, broker_id in enumerate(path):
                    if broker_id not in stored:
                        continue  # down; checked after recovery
                    hop = (
                        client
                        if broker_id == home
                        else path[index + 1]
                    )
                    if not any(
                        hop in keys and (s == expr or covers(s, expr))
                        for s, keys in stored[broker_id].items()
                    ):
                        report.add(
                            Violation(
                                SOUNDNESS,
                                "missing-routing-entry",
                                broker_id,
                                "no stored coverer of %s keyed toward %s "
                                "(subscriber %s, publisher %s)"
                                % (expr, hop, client, publisher),
                            )
                        )

    # -- invariant 3: no garbage ------------------------------------------

    def _check_stale_entries(self, report: AuditReport):
        overlay = self._overlay
        adjacency = self._adjacency()
        for broker_id in sorted(overlay.brokers):
            if overlay.is_down(broker_id):
                continue
            broker = overlay.brokers[broker_id]
            registry = broker._merge_registry
            for s, keys in sorted(self._stored(broker).items(), key=lambda i: str(i[0])):
                for hop in sorted(keys, key=str):
                    behind = self._clients_behind(adjacency, broker_id, hop)
                    justified = any(
                        s == expr or covers(s, expr)
                        for client in behind
                        for expr in self.live_subs.get(client, ())
                    )
                    if justified:
                        continue
                    leaked = registry is not None and registry.is_merger(s)
                    report.add(
                        Violation(
                            UNEXPLAINED_FP,
                            "leaked-merger" if leaked else "stale-entry",
                            broker_id,
                            "entry (%s, %s) matches no live subscription "
                            "behind that hop" % (s, hop),
                        )
                    )

    # -- invariant 4: forwarded mark / table agreement --------------------

    def _check_forwarded_agreement(self, report: AuditReport):
        overlay = self._overlay
        for a, b in sorted(overlay.links) + [
            (b, a) for a, b in sorted(overlay.links)
        ]:
            if overlay.is_down(a) or overlay.is_down(b):
                continue
            sender = overlay.brokers[a]
            receiver = overlay.brokers[b]
            marks = {
                expr
                for expr in sender.forwarded.exprs()
                if b in sender.forwarded.neighbors_for(expr)
            }
            entries = {
                expr
                for expr, keys in self._stored(receiver).items()
                if a in keys
            }
            registry = receiver._merge_registry
            absorbed = (
                registry.constituents_absorbed_from(a)
                if registry is not None
                else set()
            )
            for expr in sorted(marks - entries, key=str):
                if expr in absorbed:
                    continue  # the receiver merged the constituent away
                report.add(
                    Violation(
                        SOUNDNESS,
                        "stale-forward-mark",
                        a,
                        "mark for %s toward %s has no table entry there "
                        "(the mark would suppress a needed re-forward)"
                        % (expr, b),
                    )
                )
            for expr in sorted(entries - marks, key=str):
                if registry is not None and registry.is_merger(expr) and any(
                    a in hops
                    for hops in registry.constituents[expr].values()
                ):
                    continue  # receiver-built merger carrying a's interest
                report.add(
                    Violation(
                        SOUNDNESS,
                        "unknown-upstream-entry",
                        b,
                        "table entry (%s, %s) was never forwarded by %s"
                        % (expr, a, a),
                    )
                )

    # -- invariant 5: path probes -----------------------------------------

    def _probe_paths(self) -> List[Tuple[str, ...]]:
        probes: List[Tuple[str, ...]] = []
        seen: Set[Tuple[str, ...]] = set()
        universe = self._overlay.universe
        if universe is not None:
            for path in universe.paths[: self.probe_limit]:
                path = tuple(path)
                if path not in seen:
                    seen.add(path)
                    probes.append(path)
        for record in self.publications.values():
            if record.path not in seen:
                seen.add(record.path)
                probes.append(record.path)
        return probes

    def _check_probes(self, report: AuditReport):
        overlay = self._overlay
        if any(overlay.is_down(b) for b in overlay.brokers):
            report.info["probes"] = "skipped: a broker is down"
            return
        adjacency = self._adjacency()
        mergers = self._global_mergers()
        behind_cache: Dict[Tuple[str, object], Set[str]] = {}

        def clients_behind(broker_id, hop):
            key = (broker_id, hop)
            if key not in behind_cache:
                behind_cache[key] = self._clients_behind(
                    adjacency, broker_id, hop
                )
            return behind_cache[key]

        probed = 0
        for publisher in sorted(overlay.publishers):
            for probe in self._probe_paths():
                if not self._publishable(publisher, probe):
                    continue
                probed += 1
                expected = {
                    client
                    for client, exprs in self.live_subs.items()
                    if any(matches_path(expr, probe) for expr in exprs)
                }
                publication = Publication(
                    doc_id="__audit-probe__", path_id=0, path=probe
                )
                reached: Set[str] = set()
                frontier = [(self._home(publisher), publisher)]
                while frontier:
                    broker_id, from_hop = frontier.pop()
                    broker = overlay.brokers[broker_id]
                    for dest in broker._publish_destinations(
                        publication, from_hop
                    ):
                        if dest in overlay.brokers:
                            self._classify_probe_hop(
                                report,
                                broker,
                                dest,
                                probe,
                                clients_behind(broker_id, dest),
                                mergers,
                            )
                            frontier.append((dest, broker_id))
                        else:
                            reached.add(dest)
                for client in sorted(expected - reached):
                    report.add(
                        Violation(
                            SOUNDNESS,
                            "probe-missed",
                            self._home(client),
                            "probe /%s from %s never reached %s"
                            % ("/".join(probe), publisher, client),
                        )
                    )
                for client in sorted(reached - expected):
                    report.add(
                        Violation(
                            UNEXPLAINED_FP,
                            "client-false-positive",
                            self._home(client),
                            "probe /%s delivered to %s without a matching "
                            "subscription" % ("/".join(probe), client),
                        )
                    )
        report.info["probes"] = probed

    def _classify_probe_hop(
        self, report, broker, dest, probe, behind, mergers
    ):
        """An inter-broker probe hop: needed, explained, or a leak."""
        needed = any(
            matches_path(expr, probe)
            for client in behind
            for expr in self.live_subs.get(client, ())
        )
        if needed:
            return
        explained = any(
            s in mergers and dest in keys and matches_path(s, probe)
            for s, keys in self._stored(broker).items()
        )
        detail = "probe /%s forwarded to %s with no live match behind it" % (
            "/".join(probe),
            dest,
        )
        if explained:
            report.add(
                Violation(
                    EXPLAINED_FP, "merger-false-positive",
                    broker.broker_id, detail,
                )
            )
        else:
            report.add(
                Violation(
                    UNEXPLAINED_FP, "probe-extra-hop",
                    broker.broker_id, detail,
                )
            )

    # -- invariant 6: merge degree budget ---------------------------------

    def _check_merge_degrees(self, report: AuditReport):
        overlay = self._overlay
        universe = overlay.universe
        if universe is None:
            report.info["degrees"] = "skipped: no path universe"
            return
        from repro.broker.strategies import MergingMode

        if overlay.config.merging is MergingMode.OFF:
            return
        budget = (
            0.0
            if overlay.config.merging is MergingMode.PERFECT
            else overlay.config.max_imperfect_degree
        )
        events = 0
        for broker_id in sorted(overlay.brokers):
            broker = overlay.brokers[broker_id]
            for event in broker.merge_log:
                events += 1
                degree = universe.imperfect_degree(
                    event.merger, event.replaced
                )
                if degree > budget + 1e-9:
                    report.add(
                        Violation(
                            UNEXPLAINED_FP,
                            "degree-budget-exceeded",
                            broker_id,
                            "merge of %s has D_imperfect %.4f > budget %.4f"
                            % (
                                " | ".join(map(str, event.replaced)),
                                degree,
                                budget,
                            ),
                        )
                    )
        report.info["merge_events"] = events
