"""Routing-state audit: ground-truth oracle + invariant checker.

The audit layer answers the question every routing optimisation raises:
after covering suppression, merging and fault recovery have all rewritten
the distributed routing state, is it still *correct*?  An
:class:`AuditOracle` attaches to any :class:`~repro.network.overlay.Overlay`
run, mirrors the clients' ground truth (live subscriptions and
advertisements, expected delivery sets), and at any quiescent point diffs
every broker's tables against the reference — classifying divergences as
soundness violations, unexplained false positives, or imperfections
explained by a recorded merge within the degree budget.

See docs/audit.md for the invariant catalogue.
"""

from repro.audit.oracle import (
    AuditOracle,
    AuditReport,
    Violation,
    EXPLAINED_FP,
    SOUNDNESS,
    UNEXPLAINED_FP,
)
from repro.audit.harness import (
    audit_scenarios,
    run_audit_matrix,
    run_audited_workload,
)

__all__ = [
    "AuditOracle",
    "AuditReport",
    "Violation",
    "SOUNDNESS",
    "UNEXPLAINED_FP",
    "EXPLAINED_FP",
    "audit_scenarios",
    "run_audit_matrix",
    "run_audited_workload",
]
