"""Publication-vs-XPE matching engines."""

from repro.covering.pathmatch import matches_document_paths, matches_path
from repro.matching.engine import LinearMatcher, TreeMatcher
from repro.matching.predicate_index import PredicateIndexMatcher
from repro.matching.shared_automaton import SharedAutomatonMatcher
from repro.matching.sharded import ShardedMatcher
from repro.matching.yfilter import SharedPathNFA, YFilterMatcher

__all__ = [
    "matches_document_paths",
    "matches_path",
    "LinearMatcher",
    "PredicateIndexMatcher",
    "SharedAutomatonMatcher",
    "ShardedMatcher",
    "SharedPathNFA",
    "TreeMatcher",
    "YFilterMatcher",
]
