"""Sharded mass-subscription matching (ROADMAP item 3).

One :class:`~repro.matching.shared_automaton.SharedAutomatonMatcher`
per broker stops scaling once churn enters the picture: every SUB or
UNSUB anywhere in the table invalidates the *entire* lazy-DFA fragment
and (at the broker layer) the whole generation-stamped match cache, so
under realistic subscriber churn each publication pays a full subset
construction over a 100k-expression automaton.  :class:`ShardedMatcher`
partitions the mirror by **root element** (the first node test of an
absolute expression — the paper's path-prefix slicing, following the
partition/rebalance patterns of the cloud-distributed-systems
literature):

* every absolute XPE whose first test is concrete lives in exactly one
  **root shard**, chosen by a stable hash of its root element (CRC32 —
  process-independent, so the multiprocess backend shards identically);
* everything else (relative expressions, ``/*``-prefixed ones) lives in
  one **floating shard** that is probed on every match — a publication
  rooted at ``a`` can only match absolute expressions rooted at ``a``,
  so probing ``home(a)`` plus the floating shard is exhaustive.

Each shard is a full ``SharedAutomatonMatcher`` with its *own* DFA
fragment, its own generation counter, and its own LRU match cache — a
mutation in one shard no longer invalidates any other shard's cache or
automaton.  A probe touches at most two shards; the two probes are
independent (disjoint state), so a host may fan them out on a worker
pool (see ``match_cached``'s *executor* and the runtime backends).

**Rebalancing.**  Root elements are Zipf-skewed in every workload this
repo ships, so one shard can end up hosting most of the table.  The
matcher tracks per-root residency; when one shard's population exceeds
``rebalance_factor`` times the mean, it is *split*: a new shard is
appended and the hottest roots are migrated (re-added expression by
expression through the ordinary ``add``/``remove`` API, so the
exactly-one-copy invariant holds at every step and the audit oracle's
replay-through-the-live-engine check stays valid mid-migration).  The
root→shard override map survives ``clear()``/rebuilds — a learned
balance is kept across merge sweeps.

The authoritative routing tables stay in the broker (tree/flat); this
is a mirror that only answers "which keys match this publication",
exactly like the single shared automaton it replaces.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.cache import LRUCache
from repro.matching.shared_automaton import (
    DEFAULT_DFA_STATE_LIMIT,
    SharedAutomatonMatcher,
)
from repro.xpath.ast import WILDCARD, XPathExpr

#: Default number of root shards (the floating shard is extra).
DEFAULT_SHARD_COUNT = 4

#: Mutations between skew checks.
DEFAULT_REBALANCE_INTERVAL = 4096

#: A shard is "hot" when its population exceeds this multiple of the
#: mean root-shard population (and the minimum size below).
DEFAULT_REBALANCE_FACTOR = 2.0

#: Never split a shard smaller than this — skew over a tiny table is
#: noise, and migration has a real cost.
DEFAULT_MIN_SPLIT_SIZE = 512


def root_element(expr: XPathExpr) -> Optional[str]:
    """The shard key of *expr*: its concrete root element, or None when
    the expression can match paths under any root (relative, or a
    wildcard first step) and must live in the floating shard.

    Soundness: an absolute expression's first test constrains path
    position 0 (``XPathExpr.__post_init__`` forbids a rooted expression
    starting with a descendant axis), so an absolute XPE rooted at
    ``a`` can never match a publication whose path starts elsewhere.
    """
    if not expr.rooted:
        return None
    first = expr.tests[0]
    return None if first == WILDCARD else first


class _Shard:
    """One partition: engine + generation counter + match cache."""

    __slots__ = ("index", "engine", "generation", "cache", "probes",
                 "cache_hits", "cache_stale", "cache_misses")

    def __init__(self, index: int, dfa_state_limit: int, cache_size: int):
        self.index = index
        self.engine = SharedAutomatonMatcher(dfa_state_limit=dfa_state_limit)
        #: Bumped on every mutation that can change this shard's match
        #: results; cache entries are stamped with it (cf. the broker's
        #: global ``_match_generation``, which this replaces per shard).
        self.generation = 0
        self.cache = LRUCache(maxsize=cache_size)
        self.probes = 0
        self.cache_hits = 0
        self.cache_stale = 0
        self.cache_misses = 0

    def probe(self, path, attributes) -> frozenset:
        """Uncached probe of this shard."""
        self.probes += 1
        return frozenset(self.engine.match(path, attributes))

    def probe_cached(
        self, path, attrs_key, attributes_fn
    ) -> Tuple[frozenset, bool]:
        """Generation-checked cached probe; returns (keys, was_hit)."""
        cache_key = (path, attrs_key)
        entry = self.cache.get(cache_key)
        if entry is not None:
            if entry[0] == self.generation:
                self.cache_hits += 1
                return entry[1], True
            self.cache_stale += 1
        else:
            self.cache_misses += 1
        keys = self.probe(
            path, attributes_fn() if attributes_fn is not None else None
        )
        self.cache.put(cache_key, (self.generation, keys))
        return keys, False

    def stats(self) -> Dict[str, int]:
        return {
            "index": self.index,
            "exprs": len(self.engine),
            "nfa_states": self.engine.automaton_size(),
            "dfa_states": self.engine.dfa_size(),
            "generation": self.generation,
            "probes": self.probes,
            "cache_hits": self.cache_hits,
            "cache_stale": self.cache_stale,
            "cache_misses": self.cache_misses,
        }


class ShardedMatcher:
    """Root-element-sharded shared-automaton matcher.

    Engine contract (``add``/``remove``/``match``/``matching_exprs``/
    ``keys_of``/``exprs``/``__len__``/``clear``/``stats``/``version``)
    is identical to :class:`SharedAutomatonMatcher`, so a broker can
    hold either behind one attribute.

    Thread-safety: shards are fully independent (no shared mutable
    state), and one match probes each shard at most once — so fanning
    a single match's (or a ``match_bulk``'s per-shard groups') probes
    out on an executor is safe as long as mutations stay on the owning
    thread, which they do under every runtime backend (actors process
    one message at a time).
    """

    def __init__(
        self,
        shard_count: int = DEFAULT_SHARD_COUNT,
        dfa_state_limit: Optional[int] = None,
        cache_size: int = 2048,
        rebalance_interval: int = DEFAULT_REBALANCE_INTERVAL,
        rebalance_factor: float = DEFAULT_REBALANCE_FACTOR,
        min_split_size: int = DEFAULT_MIN_SPLIT_SIZE,
        auto_rebalance: bool = True,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if rebalance_factor <= 1.0:
            raise ValueError("rebalance_factor must exceed 1.0")
        if dfa_state_limit is None:
            # Budget the global DFA bound across the partitions.
            dfa_state_limit = max(
                1024, DEFAULT_DFA_STATE_LIMIT // (shard_count + 1)
            )
        self.base_shard_count = shard_count
        self._dfa_state_limit = dfa_state_limit
        self._cache_size = cache_size
        self.rebalance_interval = rebalance_interval
        self.rebalance_factor = rebalance_factor
        self.min_split_size = min_split_size
        self.auto_rebalance = auto_rebalance

        self._shards: List[_Shard] = [
            _Shard(i, dfa_state_limit, cache_size) for i in range(shard_count)
        ]
        self.floating = _Shard(-1, dfa_state_limit, cache_size)
        #: Explicit root→shard overrides written by rebalancing; roots
        #: not listed hash into the base shards.  Survives ``clear()``.
        self._assignment: Dict[str, int] = {}
        #: Where each resident expression lives (remove/migrate must
        #: find the copy even after its root was reassigned).
        self._expr_shard: Dict[XPathExpr, _Shard] = {}
        #: Resident expression count per concrete root element.
        self._root_load: Dict[str, int] = {}
        self.version = 0
        self.rebalances = 0
        self.migrated_exprs = 0
        #: Applied rebalance events (root moves), for tests/describe.
        self.rebalance_log: List[Dict[str, object]] = []
        self._mutations_since_check = 0
        #: The owning broker rewrote its table behind this mirror's
        #: back (merge sweep, restore) and a rebuild is pending: the
        #: resident expressions no longer reflect the routing state, so
        #: rebalancing must not migrate from them (see mark_stale).
        self.stale = False
        self._rebuild_hook: Optional[Callable[[], None]] = None
        self._rebuilding = False

    # -- placement -------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Live root-shard count (grows when a hot shard splits)."""
        return len(self._shards)

    def shard_index_for_root(self, root: str) -> int:
        index = self._assignment.get(root)
        if index is None:
            index = zlib.crc32(root.encode("utf-8")) % self.base_shard_count
        return index

    def _home(self, root: str) -> _Shard:
        return self._shards[self.shard_index_for_root(root)]

    def _shard_for(self, expr: XPathExpr) -> _Shard:
        root = root_element(expr)
        if root is None:
            return self.floating
        return self._home(root)

    def _probe_shards(self, path: Sequence[str]) -> List[_Shard]:
        if not path:
            return [self.floating]
        return [self._home(path[0]), self.floating]

    # -- maintenance -----------------------------------------------------

    def add(self, expr: XPathExpr, key: object = None):
        shard = self._expr_shard.get(expr)
        if shard is None:
            shard = self._shard_for(expr)
        engine = shard.engine
        before = engine.version
        engine.add(expr, key)
        if engine.version != before:
            shard.generation += 1
            self.version += 1
        if expr not in self._expr_shard:
            self._expr_shard[expr] = shard
            root = root_element(expr)
            if root is not None:
                self._root_load[root] = self._root_load.get(root, 0) + 1
        self._mutations_since_check += 1
        if (
            self.auto_rebalance
            and not self._rebuilding
            and not self.stale
            and self._mutations_since_check >= self.rebalance_interval
        ):
            # Never auto-rebalance mid-rebuild (the table is half
            # repopulated) or while stale (the table is about to be
            # discarded) — both would migrate from a wrong snapshot.
            self._mutations_since_check = 0
            self.maybe_rebalance()

    def remove(self, expr: XPathExpr, key: object = None):
        shard = self._expr_shard.get(expr)
        if shard is None:
            return
        engine = shard.engine
        before = engine.version
        engine.remove(expr, key)
        if engine.version != before:
            shard.generation += 1
            self.version += 1
        if not engine.keys_of(expr):
            del self._expr_shard[expr]
            root = root_element(expr)
            if root is not None:
                load = self._root_load.get(root, 0) - 1
                if load > 0:
                    self._root_load[root] = load
                else:
                    self._root_load.pop(root, None)

    def clear(self):
        """Drop every expression; the learned root→shard assignment
        (and the split shards) are kept for the rebuild."""
        for shard in self._shards:
            shard.engine.clear()
            shard.cache.clear()
            shard.generation += 1
        self.floating.engine.clear()
        self.floating.cache.clear()
        self.floating.generation += 1
        self._expr_shard = {}
        self._root_load = {}
        self.version += 1

    # -- matching --------------------------------------------------------

    def match(
        self, path: Sequence[str], attributes=None, executor=None
    ) -> Set[object]:
        """Union of subscriber keys over the home and floating probes.

        With *executor* (any ``concurrent.futures.Executor``) the shard
        probes run as concurrent tasks — sound because the probed
        shards are disjoint state.
        """
        shards = self._probe_shards(path)
        if executor is not None and len(shards) > 1:
            futures = [
                executor.submit(shard.probe, path, attributes)
                for shard in shards
            ]
            keys: Set[object] = set()
            for future in futures:
                keys |= future.result()
            return keys
        keys = set()
        for shard in shards:
            keys |= shard.probe(path, attributes)
        return keys

    def match_cached(
        self,
        path: Sequence[str],
        attrs_key,
        attributes_fn: Optional[Callable[[], object]] = None,
        executor=None,
    ) -> Tuple[frozenset, int]:
        """Generation-checked per-shard cached match.

        *attrs_key* is the publication's hashable attribute fingerprint
        and *attributes_fn* a thunk producing the attribute maps —
        called only when some probed shard actually misses.  Returns
        ``(keys, misses)`` so the caller can label its trace span.
        A mutation in one shard leaves the other shards' entries live:
        this is the per-shard invalidation the broker's global
        generation counter cannot express.
        """
        shards = self._probe_shards(path)
        misses = 0
        if executor is not None and len(shards) > 1:
            futures = [
                executor.submit(
                    shard.probe_cached, path, attrs_key, attributes_fn
                )
                for shard in shards
            ]
            keys: Set[object] = set()
            for future in futures:
                part, hit = future.result()
                keys |= part
                misses += 0 if hit else 1
            return frozenset(keys), misses
        keys = set()
        for shard in shards:
            part, hit = shard.probe_cached(path, attrs_key, attributes_fn)
            keys |= part
            misses += 0 if hit else 1
        return frozenset(keys), misses

    def match_bulk(
        self, paths: Sequence[Tuple[str, ...]], attributes=None, executor=None
    ) -> List[Set[object]]:
        """Match many paths, grouping the probes per shard so an
        executor runs at most one concurrent task per shard (shards are
        independent; one shard's DFA must not be walked concurrently).
        """
        groups: Dict[int, List[int]] = {}
        for position, path in enumerate(paths):
            shard = self._home(path[0]) if path else self.floating
            if shard is not self.floating:
                groups.setdefault(shard.index, []).append(position)

        def probe_group(shard: _Shard, positions: List[int]):
            return [
                (position, shard.probe(paths[position], attributes))
                for position in positions
            ]

        results: List[Set[object]] = [set() for _ in paths]
        tasks = [
            (self._shards[index], positions)
            for index, positions in groups.items()
        ]
        tasks.append((self.floating, list(range(len(paths)))))
        if executor is not None and len(tasks) > 1:
            futures = [
                executor.submit(probe_group, shard, positions)
                for shard, positions in tasks
            ]
            parts = [future.result() for future in futures]
        else:
            parts = [probe_group(shard, positions)
                     for shard, positions in tasks]
        for part in parts:
            for position, keys in part:
                results[position] |= keys
        return results

    def match_exprs(self, path: Sequence[str], attributes=None):
        matched = set()
        for shard in self._probe_shards(path):
            matched |= shard.engine.match_exprs(path, attributes)
        return matched

    def matching_exprs(self, path: Sequence[str], attributes=None):
        return list(self.match_exprs(path, attributes))

    # -- views -----------------------------------------------------------

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        shard = self._expr_shard.get(expr)
        return shard.engine.keys_of(expr) if shard is not None else set()

    def exprs(self):
        return list(self._expr_shard)

    def __len__(self):
        return len(self._expr_shard)

    def automaton_size(self) -> int:
        return sum(s.engine.automaton_size() for s in self._all_shards())

    def dfa_size(self) -> int:
        return sum(s.engine.dfa_size() for s in self._all_shards())

    def _all_shards(self) -> List[_Shard]:
        return self._shards + [self.floating]

    def stats(self) -> Dict[str, object]:
        """Per-shard internals for ``Broker.describe()`` and the
        ``matching.shard.*`` benchmark gauges."""
        shard_stats = [s.stats() for s in self._all_shards()]
        populations = [s["exprs"] for s in shard_stats[:-1]]
        return {
            "exprs": len(self._expr_shard),
            "shard_count": len(self._shards),
            "floating_exprs": len(self.floating.engine),
            "max_shard_exprs": max(populations) if populations else 0,
            "rebalances": self.rebalances,
            "migrated_exprs": self.migrated_exprs,
            "version": self.version,
            "stale": self.stale,
            "shards": shard_stats,
        }

    # -- rebalancing -----------------------------------------------------

    def _hot_shard(self) -> Optional[_Shard]:
        """The shard whose population trips the skew trigger, if any."""
        populations = [len(shard.engine) for shard in self._shards]
        total = sum(populations)
        if not total:
            return None
        mean = total / len(self._shards)
        hottest = max(self._shards, key=lambda s: len(s.engine))
        threshold = self.rebalance_factor * max(
            mean, float(self.min_split_size)
        )
        if len(hottest.engine) <= threshold:
            return None
        return hottest

    def mark_stale(self):
        """The authoritative table was bulk-rewritten and a rebuild is
        pending: resident expressions are a stale snapshot.  Matching
        still answers (the owning broker rebuilds before it matches),
        but rebalancing refuses to migrate until the rebuild ran."""
        self.stale = True

    def set_rebuild_hook(self, hook: Optional[Callable[[], None]]):
        """Install the owner's rebuild callback, used by
        :meth:`maybe_rebalance` to refresh a stale table first."""
        self._rebuild_hook = hook

    def _ensure_fresh(self) -> bool:
        """Rebuild a stale table through the owner's hook; returns True
        when the table is usable for migration decisions."""
        if not self.stale:
            return True
        if self._rebuild_hook is None:
            return False
        self._rebuilding = True
        try:
            self._rebuild_hook()
        finally:
            self._rebuilding = False
        self.stale = False
        return True

    def maybe_rebalance(self) -> bool:
        """Split the hottest shard if the skew trigger fires.

        A pending dirty-rebuild is honoured first: rebalancing over a
        stale table would migrate expressions out of shards the rebuild
        is about to clear, leaving ``_assignment`` pointing hot roots
        at a shard chosen from data that no longer exists."""
        if not self._ensure_fresh():
            return False
        hot = self._hot_shard()
        if hot is None:
            return False
        return self.split_shard(hot)

    def split_shard(self, hot: _Shard) -> bool:
        """Split *hot*: append a fresh shard and migrate its heaviest
        roots there until roughly half its population has moved.

        A shard hosting a single root cannot split (root granularity is
        the partition floor); returns False.  Migration re-routes each
        expression through ``remove``+``add`` on the engines, so every
        intermediate state keeps the exactly-one-copy invariant and
        match results are unchanged throughout (the audit oracle's
        replay probes stay correct mid-split).
        """
        if not self._ensure_fresh():
            return False
        roots = sorted(
            (
                root
                for root, load in self._root_load.items()
                if self._home(root) is hot
            ),
            key=lambda root: (-self._root_load[root], root),
        )
        if len(roots) < 2:
            return False
        target_index = len(self._shards)
        target = _Shard(target_index, self._dfa_state_limit, self._cache_size)
        self._shards.append(target)
        hot_population = len(hot.engine)
        moved_load = 0
        moved_roots: List[str] = []
        # Heaviest-first, but always leave the single heaviest root
        # behind: moving it would usually just relocate the hot spot.
        for root in roots[1:]:
            if moved_load * 2 >= hot_population:
                break
            moved_roots.append(root)
            moved_load += self._root_load[root]
        if not moved_roots:
            self._shards.pop()
            return False
        moving = set(moved_roots)
        migrated = 0
        for expr in list(hot.engine.exprs()):
            root = root_element(expr)
            if root not in moving:
                continue
            for key in hot.engine.keys_of(expr):
                hot.engine.remove(expr, key)
                target.engine.add(expr, key)
            self._expr_shard[expr] = target
            migrated += 1
        for root in moved_roots:
            self._assignment[root] = target_index
        hot.generation += 1
        target.generation += 1
        self.version += 1
        self.rebalances += 1
        self.migrated_exprs += migrated
        self.rebalance_log.append({
            "from": hot.index,
            "to": target_index,
            "roots": moved_roots,
            "exprs": migrated,
        })
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("matching.shard.rebalances").inc()
            registry.counter("matching.shard.migrated_exprs").inc(migrated)
            registry.set_gauge("matching.shard.count", len(self._shards))
        return True

    # -- invariants ------------------------------------------------------

    def check_invariants(self):
        """Raise AssertionError unless the partition is consistent:
        every resident expression lives in exactly one shard, in the
        shard its root currently maps to; the floating shard holds
        exactly the root-less expressions; per-root loads add up."""
        seen: Dict[XPathExpr, int] = {}
        for shard in self._all_shards():
            for expr in shard.engine.exprs():
                assert expr not in seen, (
                    "expression %s present in shards %d and %d"
                    % (expr, seen[expr], shard.index)
                )
                seen[expr] = shard.index
                assert self._expr_shard.get(expr) is shard, (
                    "placement map disagrees for %s" % (expr,)
                )
                root = root_element(expr)
                if root is None:
                    assert shard is self.floating, (
                        "root-less %s outside the floating shard" % (expr,)
                    )
                else:
                    assert shard.index == self.shard_index_for_root(root), (
                        "%s homed in shard %d, root %r maps to %d"
                        % (expr, shard.index, root,
                           self.shard_index_for_root(root))
                    )
        assert set(seen) == set(self._expr_shard)
        loads: Dict[str, int] = {}
        for expr in seen:
            root = root_element(expr)
            if root is not None:
                loads[root] = loads.get(root, 0) + 1
        assert loads == self._root_load, (loads, self._root_load)
