"""Publication-matching engines.

Table 1 of the paper compares publication routing time under four
configurations: no covering (a flat routing table, every XPE checked),
covering (the subscription tree prunes covered subtrees), and
covering+merging (a smaller tree still).  The two engines here implement
the flat baseline and the tree-based matcher behind one interface.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro import obs
from repro.cache import LRUCache
from repro.covering.pathmatch import path_matcher
from repro.covering.subscription_tree import SubscriptionTree
from repro.xpath.ast import XPathExpr


class LinearMatcher:
    """The non-covering baseline: a flat list scanned per publication.

    Attribute-free match results are memoised against an epoch counter
    bumped on every ``add``/``remove`` — the same scheme as
    ``SubscriptionTree.match_keys`` (and the broker's publication-match
    cache above both)."""

    def __init__(self):
        self._subs: Dict[XPathExpr, Set[object]] = {}
        self.match_epoch = 0
        self.keys_cache = LRUCache(
            maxsize=2048, metric_prefix="matching.linear.keys_cache"
        )

    def add(self, expr: XPathExpr, key: object = None):
        self.match_epoch += 1
        self._subs.setdefault(expr, set()).add(key)

    def remove(self, expr: XPathExpr, key: object = None):
        keys = self._subs.get(expr)
        if keys is None:
            return
        self.match_epoch += 1
        keys.discard(key)
        if not keys:
            del self._subs[expr]

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        registry = obs.get_registry()
        if not registry.enabled:
            return self._match(path, attributes)
        with registry.timer("matching.linear.match"):
            matched = self._match(path, attributes)
        registry.counter("matching.linear.exprs_scanned").inc(len(self._subs))
        return matched

    def _match(self, path: Sequence[str], attributes=None) -> Set[object]:
        if attributes is None:
            cache_key = path if type(path) is tuple else tuple(path)
            entry = self.keys_cache.get(cache_key)
            if entry is not None and entry[0] == self.match_epoch:
                return entry[1]
            result = frozenset(self._scan(path, None))
            self.keys_cache.put(cache_key, (self.match_epoch, result))
            return result
        return self._scan(path, attributes)

    def _scan(self, path: Sequence[str], attributes) -> Set[object]:
        wants = path_matcher(path, attributes)
        matched: Set[object] = set()
        for expr, keys in self._subs.items():
            if wants(expr):
                matched |= keys
        return matched

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        # Same instrumented path as match(): engine-ablation benchmarks
        # must see this scan under matching.linear.* too.
        registry = obs.get_registry()
        if not registry.enabled:
            return self._matching_exprs(path, attributes)
        with registry.timer("matching.linear.match"):
            matched = self._matching_exprs(path, attributes)
        registry.counter("matching.linear.exprs_scanned").inc(len(self._subs))
        return matched

    def _matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        wants = path_matcher(path, attributes)
        return [expr for expr in self._subs if wants(expr)]

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        return set(self._subs.get(expr, ()))

    def exprs(self):
        return list(self._subs)

    def __len__(self):
        return len(self._subs)


class TreeMatcher:
    """Covering-based matcher: a subscription tree with subtree pruning."""

    def __init__(self, tree: SubscriptionTree = None):
        self._tree = tree if tree is not None else SubscriptionTree()

    @property
    def tree(self) -> SubscriptionTree:
        return self._tree

    def add(self, expr: XPathExpr, key: object = None):
        self._tree.insert(expr, key)

    def remove(self, expr: XPathExpr, key: object = None):
        self._tree.remove(expr, key)

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        # SubscriptionTree.match carries the covering.tree.* metrics;
        # this wrapper adds the engine-level timing for engine ablations.
        registry = obs.get_registry()
        if not registry.enabled:
            return self._tree.match_keys(path, attributes)
        with registry.timer("matching.tree.match"):
            return self._tree.match_keys(path, attributes)

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        # Route through the same engine-level timer as match() so
        # ablation runs comparing the two entry points see both.
        registry = obs.get_registry()
        if not registry.enabled:
            return [node.expr for node in self._tree.match(path, attributes)]
        with registry.timer("matching.tree.match"):
            return [node.expr for node in self._tree.match(path, attributes)]

    def exprs(self):
        return self._tree.exprs()

    def __len__(self):
        return len(self._tree)
