"""A predicate-index (counting) matcher, after the paper's companion
matcher [16] ("Predicate-based filtering of XPath expressions", Hou &
Jacobsen, ICDE 2006).

The idea: decompose every XPE into *positional predicates* and match a
publication by looking up which predicates each path element satisfies,
counting per expression, and reporting the expressions whose predicate
counts are complete.  Against large workloads the per-publication cost
is driven by the number of *satisfied predicates*, not the number of
expressions — the same argument as [16].

Decomposition used here:

* an **absolute simple** XPE contributes one predicate per step:
  ``(position i, test)`` — satisfied when path[i] matches the test and
  the path is long enough;
* other shapes (relative XPEs, ``//`` operators, attribute predicates)
  are handled by a *candidate filter + verify* scheme, again following
  [16]: the expression registers its most selective concrete test as a
  filter predicate (any position), and candidates surviving the filter
  are verified with the exact path matcher.

The engine interface matches LinearMatcher / TreeMatcher /
YFilterMatcher, so it drops into brokers and ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.covering.pathmatch import matches_path
from repro.xpath.ast import WILDCARD, XPathExpr


class PredicateIndexMatcher:
    """Counting-based bulk matcher over positional predicates."""

    def __init__(self):
        self._exprs: Dict[XPathExpr, Set[object]] = {}
        # (position, test) -> expressions holding that predicate.
        self._positional: Dict[Tuple[int, str], Set[XPathExpr]] = defaultdict(set)
        # Required predicate count per simple absolute expression.
        self._required: Dict[XPathExpr, int] = {}
        # Minimum path length per simple absolute expression.
        self._min_length: Dict[XPathExpr, int] = {}
        # element name -> complex expressions filtered by that name.
        self._filtered: Dict[str, Set[XPathExpr]] = defaultdict(set)
        # Complex expressions with no concrete test (all wildcards):
        # always candidates.
        self._unfiltered: Set[XPathExpr] = set()
        # Indexed expressions made solely of wildcards: only the length
        # gate applies to them (kept separate so matching never scans
        # the whole table).
        self._all_wildcard: Set[XPathExpr] = set()

    # -- maintenance -------------------------------------------------------

    def add(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is not None:
            keys.add(key)
            return
        self._exprs[expr] = {key}
        if self._is_indexable(expr):
            count = 0
            for position, step in enumerate(expr.steps):
                if step.test != WILDCARD:
                    self._positional[(position, step.test)].add(expr)
                    count += 1
            self._required[expr] = count
            self._min_length[expr] = len(expr.steps)
            if count == 0:
                self._all_wildcard.add(expr)
        else:
            anchor = self._anchor_of(expr)
            if anchor is None:
                self._unfiltered.add(expr)
            else:
                self._filtered[anchor].add(expr)

    def remove(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is None:
            return
        keys.discard(key)
        if keys:
            return
        del self._exprs[expr]
        if expr in self._required:
            del self._required[expr]
            del self._min_length[expr]
            self._all_wildcard.discard(expr)
            for position, step in enumerate(expr.steps):
                if step.test != WILDCARD:
                    bucket = self._positional.get((position, step.test))
                    if bucket is not None:
                        bucket.discard(expr)
                        if not bucket:
                            del self._positional[(position, step.test)]
        else:
            anchor = self._anchor_of(expr)
            if anchor is None:
                self._unfiltered.discard(expr)
            else:
                bucket = self._filtered.get(anchor)
                if bucket is not None:
                    bucket.discard(expr)
                    if not bucket:
                        del self._filtered[anchor]

    @staticmethod
    def _is_indexable(expr: XPathExpr) -> bool:
        """Absolute simple predicate-free XPEs get full positional
        decomposition; everything else goes through filter+verify."""
        return expr.is_absolute and expr.is_simple and not expr.has_predicates

    @staticmethod
    def _anchor_of(expr: XPathExpr) -> Optional[str]:
        """The rarest-is-best stand-in: the expression's first concrete
        element test, used as its candidate filter."""
        for step in expr.steps:
            if step.test != WILDCARD:
                return step.test
        return None

    # -- matching ------------------------------------------------------------

    @obs.timed("matching.predicate_index.match")
    def match_exprs(
        self, path: Sequence[str], attributes=None
    ) -> Set[XPathExpr]:
        matched: Set[XPathExpr] = set()

        # Counting phase for indexed (absolute simple) expressions.
        counts: Counter = Counter()
        for position, element in enumerate(path):
            for expr in self._positional.get((position, element), ()):
                counts[expr] += 1
        for expr, seen in counts.items():
            if (
                seen == self._required[expr]
                and len(path) >= self._min_length[expr]
            ):
                matched.add(expr)
        # All-wildcard indexed expressions never enter `counts`; only
        # the length gate applies.
        for expr in self._all_wildcard:
            if len(path) >= self._min_length[expr]:
                matched.add(expr)

        # Filter + verify phase for the complex shapes.
        candidates: Set[XPathExpr] = set(self._unfiltered)
        for element in set(path):
            candidates |= self._filtered.get(element, set())
        for expr in candidates:
            if matches_path(expr, path, attributes):
                matched.add(expr)
        return matched

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        keys: Set[object] = set()
        for expr in self.match_exprs(path, attributes):
            keys |= self._exprs[expr]
        return keys

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        return list(self.match_exprs(path, attributes))

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        return set(self._exprs.get(expr, ()))

    def exprs(self):
        return list(self._exprs)

    def __len__(self):
        return len(self._exprs)

    def index_stats(self) -> Dict[str, int]:
        """Sizes of the internal indexes (ablation reporting)."""
        return {
            "indexed_exprs": len(self._required),
            "positional_predicates": len(self._positional),
            "filtered_exprs": sum(len(v) for v in self._filtered.values()),
            "unfiltered_exprs": len(self._unfiltered),
        }
