"""The mass-subscription matching engine: a lazy DFA cached over the
shared-prefix NFA.

At 10^5–10^6 resident subscriptions per broker, anything per-XPE is
linear death: even PR 3's compiled regexes pay one probe per stored
expression per publication.  Following YFilter [Diao et al., TODS 2003]
and the FPGA XML-filtering line (arXiv 0909.1781), this engine merges
every predicate-free XPE into one :class:`~repro.matching.yfilter.
SharedPathNFA` and matches a publication with a single document pass —
cost bounded by automaton size, not subscription count.

Three layers on top of the plain NFA simulation:

* **Lazy DFA.**  The active-state-set of the NFA simulation is
  deterministic given the input path, so each distinct set becomes one
  cached DFA state; a ``(state, element)`` transition is computed once
  via the subset construction and replayed as a single dict lookup ever
  after.  Publication workloads touch a tiny, hot fragment of the full
  (exponential) subset space — the cache is bounded by
  ``dfa_state_limit``; on overflow the *cold half* is evicted (states
  are stamped with a per-walk clock, so recently-walked states survive)
  instead of the classic wholesale flush, which used to discard the
  entire hot fragment because one publication wandered somewhere new.
  Correctness never depends on the cache; ``dfa_flushes`` now counts
  wholesale discards (structural invalidations), ``dfa_evictions`` the
  bounded overflow evictions.
* **Predicate post-filtering.**  Attribute predicates are invisible to
  the structural automaton.  Predicated expressions live in a
  :class:`~repro.matching.predicate_index.PredicateIndexMatcher` side
  index (the paper's companion matcher [16]): the automaton handles the
  structural mass, the predicate index the value-constrained minority,
  and a match is the union of the two.
* **Versioning.**  ``version`` is bumped by every mutation that can
  change a match result; brokers layer their generation-stamped match
  caches above it and the audit oracle replays matches through the
  live engine, so a stale cached destination set is detectable by
  construction.  Structural mutations additionally invalidate the DFA
  cache (NFA states may have been pruned — cached subsets would
  reference freed states).

Incremental ``add``/``remove`` (including real NFA state pruning on
unsubscribe) comes from the underlying :class:`SharedPathNFA`;
``automaton_size()`` returns to baseline after any churn cycle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.matching.predicate_index import PredicateIndexMatcher
from repro.matching.yfilter import SharedPathNFA, _State
from repro.xpath.ast import XPathExpr

#: Default bound on cached DFA states before a wholesale flush.
DEFAULT_DFA_STATE_LIMIT = 50_000


class _DFAState:
    """One lazily-built DFA state: a canonicalised NFA subset."""

    __slots__ = ("nfa_states", "accepting", "transitions", "stamp")

    def __init__(self, nfa_states: Tuple[_State, ...]):
        self.nfa_states = nfa_states
        accepting: Set[XPathExpr] = set()
        for state in nfa_states:
            if state.accepting:
                accepting |= state.accepting
        self.accepting: FrozenSet[XPathExpr] = frozenset(accepting)
        self.transitions: Dict[str, "_DFAState"] = {}
        #: Last walk (matcher ``_clock`` value) that visited this state;
        #: eviction keeps the highest stamps.
        self.stamp = 0


#: The unique dead state: empty subset, no way back.
_DEAD = _DFAState(())


class SharedAutomatonMatcher:
    """Shared-automaton bulk matcher with lazy-DFA state caching.

    Engine contract (same as ``LinearMatcher``/``TreeMatcher``/
    ``YFilterMatcher``/``PredicateIndexMatcher``): ``add(expr, key)``,
    ``remove(expr, key)``, ``match(path, attributes) -> set of keys``,
    plus the expression-level views.  Duplicate XPEs under distinct
    keys share one automaton trail and one key set.
    """

    def __init__(self, dfa_state_limit: int = DEFAULT_DFA_STATE_LIMIT):
        self._nfa = SharedPathNFA()
        self._predicated = PredicateIndexMatcher()
        self._keys: Dict[XPathExpr, Set[object]] = {}
        #: Bumped on every mutation that can change a match result.
        self.version = 0
        self.dfa_state_limit = dfa_state_limit
        #: Wholesale discards — structural NFA changes only, never
        #: overflow (overflow evicts the cold half instead).
        self.dfa_flushes = 0
        #: Bounded cold-half evictions on cache overflow.
        self.dfa_evictions = 0
        self._dfa_cache: Dict[FrozenSet[int], _DFAState] = {}
        self._dfa_start: Optional[_DFAState] = None
        #: Walk counter; every structural match stamps the states it
        #: visits so overflow eviction can rank hotness.
        self._clock = 0

    # -- maintenance -----------------------------------------------------

    def add(self, expr: XPathExpr, key: object = None):
        keys = self._keys.get(expr)
        if keys is None:
            self._keys[expr] = {key}
            if expr.has_predicates:
                self._predicated.add(expr, key)
            else:
                self._nfa.add(expr)
                self._invalidate_dfa()
        else:
            if key in keys:
                return
            keys.add(key)
            if expr.has_predicates:
                self._predicated.add(expr, key)
        self.version += 1

    def remove(self, expr: XPathExpr, key: object = None):
        keys = self._keys.get(expr)
        if keys is None or key not in keys:
            return
        keys.discard(key)
        if expr.has_predicates:
            self._predicated.remove(expr, key)
        if not keys:
            del self._keys[expr]
            if not expr.has_predicates:
                self._nfa.remove(expr)
                self._invalidate_dfa()
        self.version += 1

    def clear(self):
        """Drop every expression (used by full rebuilds)."""
        self._nfa = SharedPathNFA()
        self._predicated = PredicateIndexMatcher()
        self._keys = {}
        self._invalidate_dfa()
        self.version += 1

    # -- the lazy DFA ----------------------------------------------------

    def _invalidate_dfa(self):
        """Structural NFA change: every cached subset may reference
        pruned states, so the whole DFA is discarded and re-derived
        lazily from the live NFA."""
        if self._dfa_cache or self._dfa_start is not None:
            self._dfa_cache = {}
            self._dfa_start = None
            self.dfa_flushes += 1
            obs.inc("matching.shared.dfa_flushes")

    def _dfa_state_for(self, nfa_states: Dict[int, _State]) -> _DFAState:
        key = frozenset(nfa_states)
        state = self._dfa_cache.get(key)
        if state is None:
            if len(self._dfa_cache) >= self.dfa_state_limit:
                self._evict_cold()
            state = self._dfa_cache[key] = _DFAState(
                tuple(nfa_states.values())
            )
            state.stamp = self._clock
        return state

    def _evict_cold(self):
        """Overflow: drop the cold half of the DFA cache, keeping the
        most recently walked states.

        States held by an in-flight walk stay valid (the NFA is
        unchanged), evicted ones just stop being findable.  Surviving
        states' transition tables are pruned of edges into evicted
        states so a re-derived subset always resolves back to the
        single cached ``_DFAState`` per key (``_DEAD`` edges stay —
        the dead state is a module singleton, never cached)."""
        keep = max(1, self.dfa_state_limit // 2)
        ranked = sorted(
            self._dfa_cache.items(),
            key=lambda item: item[1].stamp,
            reverse=True,
        )
        kept = dict(ranked[:keep])
        survivors = {id(state) for state in kept.values()}
        survivors.add(id(_DEAD))
        for state in kept.values():
            if any(
                id(target) not in survivors
                for target in state.transitions.values()
            ):
                state.transitions = {
                    symbol: target
                    for symbol, target in state.transitions.items()
                    if id(target) in survivors
                }
        self._dfa_cache = kept
        if self._dfa_start is not None \
                and id(self._dfa_start) not in survivors:
            self._dfa_start = None
        self.dfa_evictions += 1
        obs.inc("matching.shared.dfa_evictions")

    def _start_state(self) -> _DFAState:
        if self._dfa_start is None:
            self._dfa_start = self._dfa_state_for(self._nfa.initial_states())
        return self._dfa_start

    def _transition(self, state: _DFAState, symbol: str) -> _DFAState:
        nxt: Dict[int, _State] = {}
        for nfa_state in state.nfa_states:
            target = nfa_state.edges.get(symbol)
            if target is not None:
                nxt[id(target)] = target
            star = nfa_state.edges.get("*")
            if star is not None:
                nxt[id(star)] = star
            if nfa_state.self_loop:
                nxt[id(nfa_state)] = nfa_state
        _absorb(nxt)
        target_state = self._dfa_state_for(nxt) if nxt else _DEAD
        state.transitions[symbol] = target_state
        return target_state

    def _match_structural(self, path: Sequence[str]) -> Set[XPathExpr]:
        matched: Set[XPathExpr] = set()
        self._clock += 1
        clock = self._clock
        state = self._start_state()
        state.stamp = clock
        transition = self._transition
        for symbol in path:
            nxt = state.transitions.get(symbol)
            if nxt is None:
                nxt = transition(state, symbol)
            if nxt is _DEAD:
                break
            state = nxt
            state.stamp = clock
            if state.accepting:
                matched |= state.accepting
        return matched

    # -- matching --------------------------------------------------------

    @obs.timed("matching.shared.match")
    def match_exprs(
        self, path: Sequence[str], attributes=None
    ) -> Set[XPathExpr]:
        """All stored XPEs matching the publication *path* (one
        automaton pass plus the predicate-index side lookup)."""
        matched = self._match_structural(path)
        if len(self._predicated):
            matched |= self._predicated.match_exprs(path, attributes)
        return matched

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        """Union of subscriber keys of the matching XPEs (engine API)."""
        keys: Set[object] = set()
        expr_keys = self._keys
        for expr in self.match_exprs(path, attributes):
            keys |= expr_keys[expr]
        return keys

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        return list(self.match_exprs(path, attributes))

    # -- views -----------------------------------------------------------

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        return set(self._keys.get(expr, ()))

    def exprs(self):
        return list(self._keys)

    def __len__(self):
        return len(self._keys)

    def automaton_size(self) -> int:
        """Live NFA state count (pruning returns this to baseline
        after churn — asserted by the churn tests)."""
        return self._nfa.state_count()

    def dfa_size(self) -> int:
        """Cached DFA states (the lazily-explored hot fragment)."""
        return len(self._dfa_cache)

    def stats(self) -> Dict[str, int]:
        """Engine internals for ``Broker.describe()``/ablations."""
        return {
            "exprs": len(self._keys),
            "structural_exprs": len(self._nfa),
            "predicated_exprs": len(self._predicated),
            "nfa_states": self.automaton_size(),
            "dfa_states": self.dfa_size(),
            "dfa_flushes": self.dfa_flushes,
            "dfa_evictions": self.dfa_evictions,
            "version": self.version,
        }


def _absorb(active: Dict[int, _State]):
    """ε-closure over the //-descendant links (module-local copy of the
    NFA helper, kept tight for the transition hot path)."""
    stack = list(active.values())
    while stack:
        state = stack.pop()
        child = state.descendant
        if child is not None and id(child) not in active:
            active[id(child)] = child
            stack.append(child)
