"""The shared-prefix NFA over XPE path structure, and the YFilter
baseline matcher built on it.

The paper's evaluation (§5, "Publication Routing Time") references a
comparison of its covering-tree router against **YFilter** [Diao et
al., TODS 2003]: YFilter compiles all XPEs into one NFA whose common
prefixes are shared, then matches each incoming document against the
combined automaton.  :class:`SharedPathNFA` implements that automaton
for the path-publication model used here; :class:`YFilterMatcher` wraps
it with the common engine interface
(:class:`~repro.matching.engine.LinearMatcher` /
:class:`~repro.matching.engine.TreeMatcher` /
:class:`~repro.matching.predicate_index.PredicateIndexMatcher`) so the
engines are interchangeable in brokers and benchmarks.  The
production-scale engine — a lazy DFA cached over this same NFA — lives
in :mod:`repro.matching.shared_automaton`.

Construction: one trie-like NFA over location steps.  A ``/t`` step is
an edge labelled ``t``; ``/*`` an edge labelled ``*`` (matches any
element); ``//`` introduces a state with a self-loop on any element
before the next step's edge.  A relative XPE starts behind a ``//``
state, and acceptance may fire at any path position (an XPE selects a
node *on* the path, not necessarily the leaf).

Matching runs the active-state-set simulation once per publication
path; its cost is bounded by the automaton size, not the number of
XPEs — prefix sharing is exactly what makes YFilter fast on large
overlapping workloads.

Removal really prunes: every state carries a reference count of the
expression trails traversing it, and when an expression's last key is
gone the shallowest dead state on its trail is unlinked, releasing the
whole dead subtree.  ``state_count()`` therefore returns to its old
value after any add/remove churn cycle — dead automaton branches would
otherwise accumulate without bound under subscriber churn (the classic
YFilter "prune lazily" stance, which this module used to take, is
untenable at routing-table scale).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.covering.pathmatch import matches_path
from repro.errors import RoutingError
from repro.xpath.ast import WILDCARD, Axis, XPathExpr


class _State:
    """One NFA state.

    ``edges`` maps an element name (or ``*``) to the next state;
    ``descendant`` points to the //-state child (which self-loops);
    ``accepting`` holds the XPEs that end here; ``refs`` counts the
    expression trails that traverse this state (pruning drops a state
    when it reaches zero).
    """

    __slots__ = ("edges", "descendant", "accepting", "self_loop", "refs")

    def __init__(self, self_loop: bool = False):
        self.edges: Dict[str, "_State"] = {}
        self.descendant: Optional["_State"] = None
        self.accepting: Set[XPathExpr] = set()
        self.self_loop = self_loop
        self.refs = 0


#: One trail entry: (parent state, edge label or None for the
#: descendant link, reached state).
_TrailEntry = Tuple[_State, Optional[str], _State]


class SharedPathNFA:
    """A shared-prefix NFA over a set of structural XPE skeletons.

    Predicates are invisible to the automaton — callers that admit
    predicated expressions must verify predicates on the structural
    matches (YFilter's value-based predicates are likewise evaluated
    outside the structural NFA).
    """

    def __init__(self):
        self._root = _State()
        self._trails: Dict[XPathExpr, List[_TrailEntry]] = {}

    def __len__(self):
        return len(self._trails)

    def __contains__(self, expr: XPathExpr) -> bool:
        return expr in self._trails

    def exprs(self) -> Iterator[XPathExpr]:
        return iter(self._trails)

    # -- maintenance -----------------------------------------------------

    def add(self, expr: XPathExpr):
        """Insert *expr*'s structural trail (idempotent)."""
        if expr in self._trails:
            return
        trail: List[_TrailEntry] = []
        state = self._root
        if expr.is_relative:
            state = self._descendant_of(state, trail)
        for index, step in enumerate(expr.steps):
            if step.axis is Axis.DESCENDANT and not (
                index == 0 and expr.is_relative
            ):
                state = self._descendant_of(state, trail)
            state = self._edge_of(state, step.test, trail)
        state.accepting.add(expr)
        for _, _, reached in trail:
            reached.refs += 1
        self._trails[expr] = trail

    def remove(self, expr: XPathExpr):
        """Remove *expr* and prune every state its departure orphans.

        The trail's states form a root-to-leaf chain; a state's
        reference count bounds its children's, so unlinking the
        *shallowest* state that reached zero releases the entire dead
        subtree in one cut.
        """
        trail = self._trails.pop(expr, None)
        if trail is None:
            return
        trail[-1][2].accepting.discard(expr)
        for _, _, reached in trail:
            reached.refs -= 1
        for parent, label, reached in trail:
            if reached.refs == 0:
                if label is None:
                    parent.descendant = None
                else:
                    del parent.edges[label]
                break

    def _descendant_of(self, state: _State, trail: List[_TrailEntry]) -> _State:
        child = state.descendant
        if child is None:
            child = state.descendant = _State(self_loop=True)
        trail.append((state, None, child))
        return child

    def _edge_of(
        self, state: _State, test: str, trail: List[_TrailEntry]
    ) -> _State:
        nxt = state.edges.get(test)
        if nxt is None:
            nxt = state.edges[test] = _State()
        trail.append((state, test, nxt))
        return nxt

    # -- simulation ------------------------------------------------------

    def initial_states(self) -> Dict[int, _State]:
        """The ε-closed start set (root plus its //-descendants)."""
        active = {id(self._root): self._root}
        _absorb_descendants(active)
        return active

    @staticmethod
    def step_states(
        active: Dict[int, _State], symbol: str
    ) -> Dict[int, _State]:
        """One symbol of the active-state-set simulation (ε-closed)."""
        nxt: Dict[int, _State] = {}
        for state in active.values():
            target = state.edges.get(symbol)
            if target is not None:
                nxt[id(target)] = target
            star = state.edges.get(WILDCARD)
            if star is not None:
                nxt[id(star)] = star
            if state.self_loop:
                nxt[id(state)] = state
        _absorb_descendants(nxt)
        return nxt

    def match_set(self, path: Sequence[str]) -> Set[XPathExpr]:
        """All stored XPEs whose structural skeleton matches *path*."""
        matched: Set[XPathExpr] = set()
        active = self.initial_states()
        for symbol in path:
            active = self.step_states(active, symbol)
            if not active:
                break
            for state in active.values():
                if state.accepting:
                    matched |= state.accepting
        return matched

    def state_count(self) -> int:
        """Size of the shared automaton (ablation/pruning metric)."""
        seen = set()
        stack = [self._root]
        while stack:
            state = stack.pop()
            if id(state) in seen:
                continue
            seen.add(id(state))
            stack.extend(state.edges.values())
            if state.descendant is not None:
                stack.append(state.descendant)
        return len(seen)

    def check_refcounts(self):
        """Audit helper: every reachable non-root state must be
        referenced by at least one live trail (raises on a leak)."""
        reachable = -1 + self.state_count()
        referenced = set()
        for trail in self._trails.values():
            for _, _, reached in trail:
                referenced.add(id(reached))
        if len(referenced) != reachable:
            raise RoutingError(
                "shared NFA leak: %d states reachable, %d referenced"
                % (reachable, len(referenced))
            )


class YFilterMatcher:
    """Shared-prefix NFA engine over a set of XPEs (the baseline)."""

    def __init__(self):
        self._nfa = SharedPathNFA()
        self._exprs: Dict[XPathExpr, Set[object]] = {}

    # -- maintenance -----------------------------------------------------

    def add(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is not None:
            keys.add(key)
            return
        self._exprs[expr] = {key}
        self._nfa.add(expr)

    def remove(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is None:
            return
        keys.discard(key)
        if keys:
            return
        del self._exprs[expr]
        self._nfa.remove(expr)

    # -- matching ----------------------------------------------------------

    @obs.timed("matching.yfilter.match")
    def match_exprs(
        self, path: Sequence[str], attributes=None
    ) -> Set[XPathExpr]:
        """All stored XPEs matching the publication *path*.

        The shared automaton tracks element structure; expressions with
        attribute predicates are verified with a final predicate-aware
        recheck.
        """
        verified = set()
        for expr in self._nfa.match_set(path):
            if not expr.has_predicates or matches_path(
                expr, path, attributes
            ):
                verified.add(expr)
        return verified

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        """Union of subscriber keys of the matching XPEs (engine API)."""
        keys: Set[object] = set()
        for expr in self.match_exprs(path, attributes):
            keys |= self._exprs[expr]
        return keys

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        return list(self.match_exprs(path, attributes))

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        return set(self._exprs.get(expr, ()))

    def exprs(self):
        return list(self._exprs)

    def __len__(self):
        return len(self._exprs)

    def state_count(self) -> int:
        """Size of the shared automaton (for ablation reporting)."""
        return self._nfa.state_count()

    def automaton_size(self) -> int:
        """Alias of :meth:`state_count` (the engine-reporting name)."""
        return self._nfa.state_count()


def _absorb_descendants(active: Dict[int, "_State"]):
    """ε-closure: every active state's //-child becomes active too."""
    stack = list(active.values())
    while stack:
        state = stack.pop()
        child = state.descendant
        if child is not None and id(child) not in active:
            active[id(child)] = child
            stack.append(child)
