"""A YFilter-style shared-NFA matcher (baseline).

The paper's evaluation (§5, "Publication Routing Time") references a
comparison of its covering-tree router against **YFilter** [Diao et
al., TODS 2003]: YFilter compiles all XPEs into one NFA whose common
prefixes are shared, then matches each incoming document against the
combined automaton.  This module implements that baseline for the
path-publication model used here, with the same interface as
:class:`~repro.matching.engine.LinearMatcher` and
:class:`~repro.matching.engine.TreeMatcher` so the three engines are
interchangeable in brokers and benchmarks.

Construction: one trie-like NFA over location steps.  A ``/t`` step is
an edge labelled ``t``; ``/*`` an edge labelled ``*`` (matches any
element); ``//`` introduces a state with a self-loop on any element
before the next step's edge.  A relative XPE starts behind a ``//``
state, and acceptance may fire at any path position (an XPE selects a
node *on* the path, not necessarily the leaf).

Matching runs the active-state-set simulation once per publication
path; its cost is bounded by the automaton size, not the number of
XPEs — prefix sharing is exactly what makes YFilter fast on large
overlapping workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro import obs
from repro.covering.pathmatch import matches_path
from repro.xpath.ast import WILDCARD, Axis, XPathExpr


class _State:
    """One NFA state.

    ``edges`` maps an element name (or ``*``) to the next state;
    ``descendant`` points to the //-state child (which self-loops);
    ``accepting`` holds the keys of XPEs that end here.
    """

    __slots__ = ("edges", "descendant", "accepting", "self_loop")

    def __init__(self, self_loop: bool = False):
        self.edges: Dict[str, "_State"] = {}
        self.descendant: Optional["_State"] = None
        self.accepting: Set[XPathExpr] = set()
        self.self_loop = self_loop


class YFilterMatcher:
    """Shared-prefix NFA over a set of XPEs."""

    def __init__(self):
        self._root = _State()
        self._exprs: Dict[XPathExpr, Set[object]] = {}
        self._accepting_nodes: Dict[XPathExpr, _State] = {}

    # -- maintenance -----------------------------------------------------

    def add(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is not None:
            keys.add(key)
            return
        self._exprs[expr] = {key}
        state = self._root
        if expr.is_relative:
            state = self._descendant_of(state)
        for index, step in enumerate(expr.steps):
            if step.axis is Axis.DESCENDANT and not (
                index == 0 and expr.is_relative
            ):
                state = self._descendant_of(state)
            state = self._edge_of(state, step.test)
        state.accepting.add(expr)
        self._accepting_nodes[expr] = state

    def remove(self, expr: XPathExpr, key: object = None):
        keys = self._exprs.get(expr)
        if keys is None:
            return
        keys.discard(key)
        if keys:
            return
        del self._exprs[expr]
        node = self._accepting_nodes.pop(expr)
        node.accepting.discard(expr)
        # States are left in place (classic YFilter prunes lazily); they
        # are shared with other expressions and harmless when inert.

    def _descendant_of(self, state: _State) -> _State:
        if state.descendant is None:
            state.descendant = _State(self_loop=True)
        return state.descendant

    def _edge_of(self, state: _State, test: str) -> _State:
        nxt = state.edges.get(test)
        if nxt is None:
            nxt = _State()
            state.edges[test] = nxt
        return nxt

    # -- matching ----------------------------------------------------------

    @obs.timed("matching.yfilter.match")
    def match_exprs(
        self, path: Sequence[str], attributes=None
    ) -> Set[XPathExpr]:
        """All stored XPEs matching the publication *path*.

        The shared automaton tracks element structure; expressions with
        attribute predicates are verified with a final predicate-aware
        recheck (YFilter's value-based predicates are likewise evaluated
        outside the structural NFA).
        """
        matched: Set[XPathExpr] = set()
        active = {id(self._root): self._root}
        _absorb_descendants(active)
        for symbol in path:
            nxt: Dict[int, _State] = {}
            for state in active.values():
                target = state.edges.get(symbol)
                if target is not None:
                    nxt[id(target)] = target
                star = state.edges.get(WILDCARD)
                if star is not None:
                    nxt[id(star)] = star
                if state.self_loop:
                    nxt[id(state)] = state
            _absorb_descendants(nxt)
            for state in nxt.values():
                matched |= state.accepting
            active = nxt
            if not active:
                break
        verified = set()
        for expr in matched:
            if not expr.has_predicates or matches_path(
                expr, path, attributes
            ):
                verified.add(expr)
        return verified

    def match(self, path: Sequence[str], attributes=None) -> Set[object]:
        """Union of subscriber keys of the matching XPEs (engine API)."""
        keys: Set[object] = set()
        for expr in self.match_exprs(path, attributes):
            keys |= self._exprs[expr]
        return keys

    def matching_exprs(
        self, path: Sequence[str], attributes=None
    ) -> List[XPathExpr]:
        return list(self.match_exprs(path, attributes))

    def keys_of(self, expr: XPathExpr) -> Set[object]:
        return set(self._exprs.get(expr, ()))

    def exprs(self):
        return list(self._exprs)

    def __len__(self):
        return len(self._exprs)

    def state_count(self) -> int:
        """Size of the shared automaton (for ablation reporting)."""
        seen = set()
        stack = [self._root]
        while stack:
            state = stack.pop()
            if id(state) in seen:
                continue
            seen.add(id(state))
            stack.extend(state.edges.values())
            if state.descendant is not None:
                stack.append(state.descendant)
        return len(seen)


def _absorb_descendants(active: Dict[int, "_State"]):
    """ε-closure: every active state's //-child becomes active too."""
    stack = list(active.values())
    while stack:
        state = stack.pop()
        child = state.descendant
        if child is not None and id(child) not in active:
            active[id(child)] = child
            stack.append(child)
