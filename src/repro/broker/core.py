"""The runtime-agnostic broker core: message in → effects out.

:class:`BrokerCore` is the pure state-machine face of a
:class:`~repro.broker.broker.Broker`.  It owns no clock, no queue and
no I/O: every host — the discrete-event simulator
(:class:`~repro.network.overlay.Overlay`), the asyncio event-loop
backend (:mod:`repro.runtime.asyncio_backend`) and the multiprocess
socket deployment (:mod:`repro.runtime.multiprocess`) — feeds it one
message at a time and interprets the returned :class:`Effect` list
however its execution model requires:

* :class:`Send` — forward a message to a neighbouring broker (over a
  simulated link, an asyncio queue, or a TCP connection),
* :class:`Deliver` — hand a message to a locally attached client,
* :class:`ViewServe` — a Deliver satisfied from an edge materialized
  view (a subclass, so Deliver-handling hosts work unchanged),
* :class:`Replay` — deliver a view's retained publication window to a
  late subscriber (see docs/views.md),
* :class:`TimerRequest` — ask the host to call :meth:`BrokerCore.
  on_timer` later (the merge-sweep cadence; the core never sleeps),
* :class:`Telemetry` — a host-visible measurement the core does not
  interpret (hosts may map these onto their metrics registry).

Determinism contract (pinned by tests/test_broker_core.py): for a fixed
message sequence the effect list is a pure function of the sequence —
no wall-clock reads, no iteration-order nondeterminism — and replaying
the suffix of a sequence on a core restored from a mid-sequence
snapshot yields byte-identical effects.  That contract is what lets the
three backends be differentially tested against each other
(tests/test_runtime_equivalence.py) and what makes crash recovery by
snapshot replay sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.broker.broker import Broker
from repro.broker.messages import Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError

#: The merge-sweep timer name (the only timer the core requests today).
MERGE_SWEEP_TIMER = "merge-sweep"
TELEMETRY_TIMER = "telemetry-sample"


@dataclass(frozen=True)
class Effect:
    """Base class for everything a core asks its host to do."""


@dataclass(frozen=True)
class Send(Effect):
    """Forward *message* to the neighbouring broker *destination*."""

    destination: object
    message: Message


@dataclass(frozen=True)
class Deliver(Effect):
    """Hand *message* to the locally attached client *client_id*."""

    client_id: object
    message: Message


@dataclass(frozen=True)
class ViewServe(Deliver):
    """A :class:`Deliver` satisfied from an edge materialized view
    (docs/views.md) instead of the matching core.  Subclassing keeps
    every host's ``isinstance(effect, Deliver)`` path working — the
    delivery is byte-identical to the core route; the subtype only
    lets hosts label spans/metrics and the audit oracle classify it."""


@dataclass(frozen=True)
class Replay(Effect):
    """Deliver a materialized view's retained publication window to the
    late subscriber *client_id* (one message at a time, over whatever
    transport the host uses for deliveries — client-side dedup on
    ``(doc_id, path_id)`` supplies the exactly-once semantics)."""

    client_id: object
    messages: tuple
    group: tuple  # the view's path, for tracing/debugging


@dataclass(frozen=True)
class TimerRequest(Effect):
    """Ask the host to call :meth:`BrokerCore.on_timer` with *name*
    after *delay* seconds of the host's own clock (the core has none)."""

    name: str
    delay: float


@dataclass(frozen=True)
class Telemetry(Effect):
    """A measurement for the host's metrics pipeline (never routed)."""

    name: str
    value: float = 1.0


class BrokerCore:
    """One broker as a pure state machine.

    Wraps (or builds) a :class:`Broker` and partitions its outbound
    ``(destination, message)`` pairs into typed effects, so hosts never
    need to know which destinations are neighbours and which are local
    clients.  The wrapped broker is reachable as :attr:`broker` — the
    simulator's audit oracle and the test suites inspect its tables
    directly, and that stays true on every backend.
    """

    def __init__(
        self,
        broker_id: Optional[str] = None,
        config: Optional[RoutingConfig] = None,
        universe=None,
        broker: Optional[Broker] = None,
    ):
        if broker is None:
            if broker_id is None:
                raise RoutingError("BrokerCore needs a broker or a broker_id")
            broker = Broker(broker_id, config=config, universe=universe)
        self.broker = broker
        #: Sampling period while the telemetry timer is armed (None
        #: when the host has not enabled telemetry on this core).
        self.telemetry_interval: Optional[float] = None

    @property
    def broker_id(self):
        return self.broker.broker_id

    @property
    def config(self) -> RoutingConfig:
        return self.broker.config

    # -- wiring (delegated verbatim) --------------------------------------

    def connect(self, neighbor_id: object):
        self.broker.connect(neighbor_id)

    def attach_client(self, client_id: object):
        self.broker.attach_client(client_id)

    def set_matching_executor(self, executor):
        """Install a ``concurrent.futures`` executor for the sharded
        matching engine's parallel shard probes (no-op for the other
        engines).  The host owns the executor's lifecycle: the core
        only borrows it, and ``None`` detaches.  Determinism contract
        is preserved — probe results are unioned, never ordered by
        completion."""
        self.broker.matching_executor = executor

    # -- the state machine -------------------------------------------------

    def on_message(self, message: Message, from_hop: object) -> List[Effect]:
        """Process one inbound message; returns the resulting effects."""
        return self._classify(self.broker.handle(message, from_hop))

    def on_publish_batch(
        self, messages: List[PublishMsg], from_hop: object
    ) -> List[Effect]:
        """Batch counterpart of :meth:`on_message` (publications only)."""
        return self._classify(
            self.broker.handle_publish_batch(messages, from_hop)
        )

    def enable_telemetry(self, interval: float) -> TimerRequest:
        """Arm the periodic telemetry timer; the host schedules the
        returned request and keeps re-scheduling the one
        :meth:`on_timer` re-emits each period."""
        self.telemetry_interval = float(interval)
        return TimerRequest(TELEMETRY_TIMER, self.telemetry_interval)

    def on_timer(self, name: str) -> List[Effect]:
        """A host timer fired.  ``merge-sweep`` runs one merging sweep;
        ``telemetry-sample`` marks a sampling tick (the host reads the
        gauges — the core just re-arms and counts); unknown timer names
        are a host bug and raise."""
        if name == MERGE_SWEEP_TIMER:
            return self._classify(self.broker.run_merge_sweep())
        if name == TELEMETRY_TIMER:
            if self.telemetry_interval is None:
                # Telemetry was disabled between scheduling and firing
                # (e.g. the core was rebuilt on restart): drop the tick.
                return []
            return [
                Telemetry("telemetry.timer.fires"),
                TimerRequest(TELEMETRY_TIMER, self.telemetry_interval),
            ]
        raise RoutingError(
            "broker %r received unknown timer %r" % (self.broker_id, name)
        )

    def _classify(self, outbound) -> List[Effect]:
        broker = self.broker
        served = broker._take_view_served()
        effects: List[Effect] = []
        for destination, message in outbound:
            if destination in broker.local_clients:
                if served and (destination, message.msg_id) in served:
                    effects.append(ViewServe(destination, message))
                else:
                    effects.append(Deliver(destination, message))
            elif destination in broker.neighbors:
                effects.append(Send(destination, message))
            else:
                raise RoutingError(
                    "broker %r emitted message to unknown destination %r"
                    % (self.broker_id, destination)
                )
        for client_id, messages, group in broker._take_pending_replays():
            effects.append(Replay(client_id, tuple(messages), tuple(group)))
        return effects

    # -- snapshot / replay -------------------------------------------------

    def snapshot(self) -> Dict:
        """Plain-data image of the routing state (see
        :mod:`repro.broker.persistence`)."""
        from repro.broker.persistence import snapshot

        return snapshot(self.broker)

    @classmethod
    def restore(
        cls,
        state: Dict,
        universe=None,
        matching_engine: Optional[str] = None,
        shard_count: Optional[int] = None,
    ) -> "BrokerCore":
        """Rebuild a core from :meth:`snapshot` output.  Replaying the
        message suffix recorded after the snapshot yields the same
        effects the original core produced (the determinism contract).
        ``matching_engine``/``shard_count`` override the snapshot's
        values (see :func:`repro.broker.persistence.restore`)."""
        from repro.broker.persistence import restore

        return cls(
            broker=restore(
                state,
                universe=universe,
                matching_engine=matching_engine,
                shard_count=shard_count,
            )
        )

    def fingerprint(self) -> str:
        """Stable digest of the routing tables (see
        :func:`repro.runtime.base.routing_fingerprint`)."""
        from repro.runtime.base import routing_fingerprint

        return routing_fingerprint(self.broker)

    def describe(self) -> Dict[str, object]:
        return self.broker.describe()

    def __repr__(self):
        return "BrokerCore(%r)" % (self.broker,)


def canonical_effects(effects: List[Effect]) -> List[tuple]:
    """A value-comparable form of an effect list.

    ``Message`` equality includes the process-unique ``msg_id``, so two
    semantically identical effect lists from two cores never compare
    equal directly.  This renders each effect through the wire encoding
    (which, like a real network, carries no ``msg_id`` and no trace
    stamp), giving replay tests an exact-equality target.
    """
    from repro.network.wire import message_to_obj

    def message_key(message: Message):
        obj = message_to_obj(message)
        obj.pop("trace", None)
        return _freeze(obj)

    rendered: List[tuple] = []
    for effect in effects:
        if isinstance(effect, Send):
            rendered.append(
                ("send", str(effect.destination), message_key(effect.message))
            )
        elif isinstance(effect, Deliver):
            # ViewServe renders as a plain delivery on purpose: a
            # view-served delivery must be byte-identical to the core
            # route, and replay tests compare through this form.
            rendered.append(
                ("deliver", str(effect.client_id), message_key(effect.message))
            )
        elif isinstance(effect, Replay):
            rendered.append(
                (
                    "replay",
                    str(effect.client_id),
                    tuple(message_key(m) for m in effect.messages),
                )
            )
        elif isinstance(effect, TimerRequest):
            rendered.append(("timer", effect.name, effect.delay))
        elif isinstance(effect, Telemetry):
            rendered.append(("telemetry", effect.name, effect.value))
        else:  # pragma: no cover - future effect kinds must opt in
            raise RoutingError("cannot canonicalise effect %r" % (effect,))
    return rendered


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
