"""Broker routing tables.

The *subscription routing table* (SRT) stores ``<advertisement,
last-hop>`` tuples and answers "toward which neighbours does this XPE
have intersecting advertisements?" — the advertisement-based
subscription forwarding decision of paper §3.

The *publication routing table* (PRT) stores ``<subscription,
last-hop>`` state; in this implementation it is embodied by either a
:class:`~repro.matching.engine.LinearMatcher` (non-covering strategies)
or a :class:`~repro.covering.subscription_tree.SubscriptionTree`
(covering strategies) inside :class:`~repro.broker.broker.Broker`, plus
the per-neighbour ``forwarded`` bookkeeping defined here.

Under ``matching_engine="sharded"`` the PRT's *matching* view is
additionally partitioned: a :class:`~repro.matching.sharded.
ShardedMatcher` mirrors the authoritative tree/flat table as N
root-element shards with independent caches and DFA fragments (see
docs/matching.md).  The authoritative table here stays monolithic —
forwarding, covering, and merging semantics are untouched by sharding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.adverts.model import Advertisement
from repro.adverts.recursive import expr_and_advertisement
from repro.xpath.ast import XPathExpr


@dataclass(frozen=True)
class SRTEntry:
    """One stored advertisement."""

    adv_id: str
    advert: Advertisement
    last_hop: object
    publisher_id: str


class SubscriptionRoutingTable:
    """The SRT: advertisements with the hop they arrived from."""

    def __init__(self):
        self._entries: Dict[str, SRTEntry] = {}

    def add(
        self,
        adv_id: str,
        advert: Advertisement,
        last_hop: object,
        publisher_id: str = "",
    ) -> bool:
        """Store an advertisement; returns False for duplicates (the
        flooding termination condition)."""
        if adv_id in self._entries:
            return False
        self._entries[adv_id] = SRTEntry(
            adv_id=adv_id,
            advert=advert,
            last_hop=last_hop,
            publisher_id=publisher_id,
        )
        return True

    def remove(self, adv_id: str) -> bool:
        return self._entries.pop(adv_id, None) is not None

    def __len__(self):
        return len(self._entries)

    def __contains__(self, adv_id):
        return adv_id in self._entries

    def entries(self) -> List[SRTEntry]:
        return list(self._entries.values())

    def matching_entries(self, expr: XPathExpr) -> List[SRTEntry]:
        """Entries whose advertisement intersects *expr*."""
        return [
            entry
            for entry in self._entries.values()
            if expr_and_advertisement(entry.advert, expr)
        ]

    def matching_last_hops(self, expr: XPathExpr) -> Set[object]:
        """The subscription forwarding targets for *expr*."""
        return {entry.last_hop for entry in self.matching_entries(expr)}

    def intersects_any(self, expr: XPathExpr) -> bool:
        return any(
            expr_and_advertisement(entry.advert, expr)
            for entry in self._entries.values()
        )


class ForwardedState:
    """Which neighbours each XPE has been forwarded to.

    Covering-based suppression must be per-neighbour to stay correct: a
    subscription covered by ``s'`` may skip exactly the neighbours that
    already received ``s'`` (see broker docstring for the failure mode
    of hop-agnostic suppression).
    """

    def __init__(self):
        self._sent: Dict[XPathExpr, Set[object]] = {}

    def neighbors_for(self, expr: XPathExpr) -> Set[object]:
        return self._sent.get(expr, set())

    def mark(self, expr: XPathExpr, neighbor: object):
        self._sent.setdefault(expr, set()).add(neighbor)

    def unmark(self, expr: XPathExpr, neighbor: object):
        sent = self._sent.get(expr)
        if sent is not None:
            sent.discard(neighbor)
            if not sent:
                del self._sent[expr]

    def drop(self, expr: XPathExpr) -> Set[object]:
        """Forget an XPE entirely, returning where it had been sent."""
        return self._sent.pop(expr, set())

    def was_sent(self, expr: XPathExpr, neighbor: object) -> bool:
        return neighbor in self._sent.get(expr, ())

    def exprs(self) -> Iterable[XPathExpr]:
        return list(self._sent)

    def __len__(self):
        return len(self._sent)
