"""Protocol messages exchanged between brokers and clients.

Four message kinds flow through the overlay, mirroring the paper's
Figure 1 machinery:

* advertisements (flooded, build the SRT),
* subscriptions (routed along advertisement reverse paths, build the PRT),
* unsubscriptions (retract subscriptions; also emitted by covering and
  merging optimisations),
* publications (root-to-leaf document paths, routed along subscription
  reverse paths).

Messages are immutable; the simulator counts every broker-to-broker and
client-to-broker hop of each message as one unit of network traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


from repro.adverts.model import Advertisement
from repro.xmldoc.document import Publication
from repro.xpath.ast import XPathExpr

_msg_counter = itertools.count()


def _next_msg_id() -> int:
    return next(_msg_counter)


@dataclass(frozen=True)
class Message:
    """Base class; ``msg_id`` is unique per process."""

    #: Causal trace context (:class:`repro.obs.tracing.TraceContext`),
    #: stamped once at mint/decode time via ``object.__setattr__``.  A
    #: plain class attribute — not a dataclass field — so constructors,
    #: ``replace`` and equality are untouched and untraced messages pay
    #: nothing.  Per-hop causality travels out of band (one message
    #: object can be in flight to several destinations at once).
    trace = None

    msg_id: int = field(default_factory=_next_msg_id, init=False)

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class AdvertiseMsg(Message):
    """An advertisement flooded through the overlay."""

    adv_id: str = ""
    advert: Advertisement = None
    publisher_id: str = ""


@dataclass(frozen=True)
class UnadvertiseMsg(Message):
    """Retracts a previously flooded advertisement."""

    adv_id: str = ""


@dataclass(frozen=True)
class SubscribeMsg(Message):
    """A subscription (an XPE) travelling toward matching publishers."""

    expr: XPathExpr = None
    subscriber_id: str = ""


@dataclass(frozen=True)
class UnsubscribeMsg(Message):
    """Retracts a subscription by exact XPE."""

    expr: XPathExpr = None
    subscriber_id: str = ""


@dataclass(frozen=True)
class PublishMsg(Message):
    """One publication path of a document, with transport size metadata.

    ``doc_size_bytes`` carries the size of the underlying document so
    latency models can charge transmission time (the paper's Figures
    10–11 vary document size).
    """

    publication: Publication = None
    publisher_id: str = ""
    doc_size_bytes: int = 0
    issued_at: float = 0.0
