"""Routing strategy configuration.

The evaluation (Tables 2–3) compares six strategies built from three
switches: advertisement-based subscription routing, covering-based
forwarding suppression, and merging (perfect or imperfect).
:class:`RoutingConfig` captures one combination; the class methods build
the paper's six named rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MergingMode(enum.Enum):
    """Merging flavours from the paper."""

    OFF = "off"
    PERFECT = "perfect"
    IMPERFECT = "imperfect"


#: Publication-matching backends selectable per broker.  ``auto`` keeps
#: the paper's arrangement (the covering tree doubles as the matcher
#: when covering is on, the flat linear scan otherwise); ``shared``
#: layers a :class:`~repro.matching.shared_automaton.
#: SharedAutomatonMatcher` mirror over the routing table so one
#: document pass matches every resident subscription at once (the
#: mass-subscription path — see docs/matching.md); ``sharded``
#: partitions that mirror by root element into ``shard_count``
#: independently-cached shards (:class:`~repro.matching.sharded.
#: ShardedMatcher`) so churn in one shard leaves the others' caches
#: warm and the runtime backends can probe shards in parallel.
MATCHING_ENGINES = ("auto", "shared", "sharded")


@dataclass(frozen=True)
class RoutingConfig:
    """One routing strategy.

    Attributes:
        advertisements: route subscriptions only toward intersecting
            advertisements instead of flooding them.
        covering: suppress forwarding of covered subscriptions and
            unsubscribe displaced ones.
        merging: merge similar XPEs in the routing table.  With
            covering the sweep rewrites the subscription tree; without
            it the flat table is swept as one sibling group (see
            ``MergingEngine.merge_flat``).
        max_imperfect_degree: imperfection budget for ``IMPERFECT``
            merging (the paper's headline configuration uses 0.1).
        merge_interval: run a merge sweep after this many processed
            subscriptions ("we periodically apply the merging rules").
    """

    advertisements: bool = True
    covering: bool = True
    merging: MergingMode = MergingMode.OFF
    max_imperfect_degree: float = 0.1
    merge_interval: int = 100
    #: Suppress flooding of advertisements covered by a same-direction
    #: advertisement (paper §2.2 defines advertisement covering "in the
    #: same manner" as subscription covering).  Off by default — the
    #: paper's evaluation does not enable it.
    advert_covering: bool = False
    #: Publication-matching backend (see :data:`MATCHING_ENGINES`).
    #: Orthogonal to the routing strategy: the SRT/covering tree keep
    #: driving *forwarding*, this only selects how a publication is
    #: matched against the resident XPEs.
    matching_engine: str = "auto"
    #: Root shards for ``matching_engine="sharded"`` (ignored by the
    #: other engines).  The floating shard for relative/wildcard-root
    #: expressions is extra, and a skew-triggered split can grow the
    #: live shard count beyond this at runtime.
    shard_count: int = 4
    #: Edge materialized views (see docs/views.md): every broker with
    #: local subscribers memoises the routing decision and retains the
    #: delivered-publication window of its hot publication groups, so
    #: repeat publications are served without re-matching and a late
    #: subscriber gets the window replayed.  Off by default — views are
    #: rebuildable state and orthogonal to the routing strategy.
    views: bool = False
    #: Retained publications per materialized view (the replay window).
    view_window: int = 64
    #: Deliveries of a publication group before a view materializes.
    view_hot_threshold: int = 3
    #: Maximum live views per broker (oldest dropped beyond this).
    view_max: int = 128

    def __post_init__(self):
        if self.merge_interval < 1:
            raise ValueError("merge_interval must be at least 1")
        if self.matching_engine not in MATCHING_ENGINES:
            raise ValueError(
                "unknown matching engine %r (one of %s)"
                % (self.matching_engine, ", ".join(MATCHING_ENGINES))
            )
        if self.shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if self.view_window < 1:
            raise ValueError("view_window must be at least 1")
        if self.view_hot_threshold < 1:
            raise ValueError("view_hot_threshold must be at least 1")
        if self.view_max < 1:
            raise ValueError("view_max must be at least 1")

    # -- the six rows of Tables 2 and 3 ------------------------------------

    @classmethod
    def no_adv_no_cov(cls):
        return cls(advertisements=False, covering=False)

    @classmethod
    def no_adv_with_cov(cls):
        return cls(advertisements=False, covering=True)

    @classmethod
    def with_adv_no_cov(cls):
        return cls(advertisements=True, covering=False)

    @classmethod
    def with_adv_with_cov(cls):
        return cls(advertisements=True, covering=True)

    @classmethod
    def with_adv_with_cov_pm(cls, merge_interval: int = 100):
        return cls(
            advertisements=True,
            covering=True,
            merging=MergingMode.PERFECT,
            merge_interval=merge_interval,
        )

    @classmethod
    def with_adv_with_cov_ipm(
        cls, max_imperfect_degree: float = 0.1, merge_interval: int = 100
    ):
        return cls(
            advertisements=True,
            covering=True,
            merging=MergingMode.IMPERFECT,
            max_imperfect_degree=max_imperfect_degree,
            merge_interval=merge_interval,
        )

    @classmethod
    def full(cls):
        """The most optimised configuration."""
        return cls.with_adv_with_cov_ipm()

    ALL_NAMES = (
        "no-Adv-no-Cov",
        "no-Adv-with-Cov",
        "with-Adv-no-Cov",
        "with-Adv-with-Cov",
        "with-Adv-with-CovPM",
        "with-Adv-with-CovIPM",
    )

    @classmethod
    def by_name(cls, name: str) -> "RoutingConfig":
        """Look up one of the paper's six strategy names."""
        table = {
            "no-Adv-no-Cov": cls.no_adv_no_cov,
            "no-Adv-with-Cov": cls.no_adv_with_cov,
            "with-Adv-no-Cov": cls.with_adv_no_cov,
            "with-Adv-with-Cov": cls.with_adv_with_cov,
            "with-Adv-with-CovPM": cls.with_adv_with_cov_pm,
            "with-Adv-with-CovIPM": cls.with_adv_with_cov_ipm,
        }
        try:
            return table[name]()
        except KeyError:
            raise ValueError("unknown routing strategy %r" % name)

    @property
    def name(self) -> str:
        adv = "with-Adv" if self.advertisements else "no-Adv"
        cov = "with-Cov" if self.covering else "no-Cov"
        suffix = {
            MergingMode.OFF: "",
            MergingMode.PERFECT: "PM",
            MergingMode.IMPERFECT: "IPM",
        }[self.merging]
        return "%s-%s%s" % (adv, cov, suffix)
