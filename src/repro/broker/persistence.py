"""Broker state snapshots.

A broker restarting in a real deployment must rebuild its routing state
(SRT, PRT, forwarding records, client subscriptions) or the overlay
silently loses deliveries.  :func:`snapshot` captures a broker's full
routing state as a JSON-serialisable dict; :func:`restore` rebuilds an
equivalent broker.  Round-tripping preserves routing behaviour exactly
(asserted by tests/test_persistence.py, which compares the restored
broker's decisions message-for-message).

Keys (last hops and client ids) must be strings — which they are
everywhere in the overlay and the TCP deployment.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.broker.broker import Broker
from repro.broker.strategies import MATCHING_ENGINES, MergingMode, RoutingConfig
from repro.errors import ConfigError, ReproError
from repro.merging.engine import MergeEvent
from repro.network.wire import advert_from_obj, advert_to_obj
from repro.xpath.parser import parse_xpath


class PersistenceError(ReproError):
    """Raised for malformed snapshots."""


def snapshot(broker: Broker) -> Dict:
    """Capture *broker*'s routing state as plain data."""
    config = broker.config
    state = {
        "broker_id": broker.broker_id,
        "config": {
            "advertisements": config.advertisements,
            "covering": config.covering,
            "merging": config.merging.value,
            "max_imperfect_degree": config.max_imperfect_degree,
            "merge_interval": config.merge_interval,
            "advert_covering": config.advert_covering,
            "matching_engine": config.matching_engine,
            "shard_count": config.shard_count,
            "views": config.views,
            "view_window": config.view_window,
            "view_hot_threshold": config.view_hot_threshold,
            "view_max": config.view_max,
        },
        "neighbors": sorted(map(str, broker.neighbors)),
        "local_clients": sorted(map(str, broker.local_clients)),
        "srt": [
            {
                "adv_id": entry.adv_id,
                "advert": advert_to_obj(entry.advert),
                "last_hop": str(entry.last_hop),
                "publisher_id": entry.publisher_id,
            }
            for entry in broker.srt.entries()
        ],
        "subscriptions": [
            {"expr": str(expr), "keys": sorted(map(str, keys))}
            for expr, keys in _subscription_items(broker)
        ],
        "forwarded": [
            {
                "expr": str(expr),
                "neighbors": sorted(
                    map(str, broker.forwarded.neighbors_for(expr))
                ),
            }
            for expr in sorted(broker.forwarded.exprs(), key=str)
        ],
        "client_subs": {
            str(client): sorted(str(expr) for expr in exprs)
            for client, exprs in broker.client_subs.items()
            if exprs
        },
    }
    if broker._merge_registry is not None:
        registry = broker._merge_registry
        state["mergers"] = [
            {
                "expr": str(merger),
                "direct": sorted(map(str, registry.direct.get(merger, ()))),
                "constituents": [
                    {"expr": str(expr), "hops": sorted(map(str, hops))}
                    for expr, hops in sorted(
                        registry.constituents[merger].items(),
                        key=lambda item: str(item[0]),
                    )
                ],
            }
            for merger in sorted(registry.mergers(), key=str)
        ]
        state["merge_log"] = [
            {
                "merger": str(event.merger),
                "replaced": [str(expr) for expr in event.replaced],
                "degree": event.degree,
            }
            for event in broker.merge_log
        ]
    return state


def _subscription_items(broker: Broker):
    if broker.config.covering:
        for node in sorted(broker.tree.iter_nodes(), key=lambda n: str(n.expr)):
            yield node.expr, node.keys
    else:
        for expr in sorted(broker.flat.exprs(), key=str):
            yield expr, broker.flat.keys_of(expr)


def snapshot_json(broker: Broker) -> str:
    """JSON text form of :func:`snapshot`."""
    return json.dumps(snapshot(broker), indent=2, sort_keys=True)


def _validated_matching(
    config_state: Dict,
    matching_engine: "str | None",
    shard_count: "int | None",
):
    """Resolve and validate the matching-engine fields of a snapshot
    (with optional restore-time overrides).  A snapshot written by a
    future version — an engine name or shard count this build does not
    understand — must fail with a :class:`~repro.errors.ConfigError`
    naming the field, not a bare ``KeyError``/``ValueError`` from deep
    inside matcher construction."""
    engine = (
        matching_engine
        if matching_engine is not None
        else config_state.get("matching_engine", "auto")
    )
    if engine not in MATCHING_ENGINES:
        raise ConfigError(
            "snapshot field 'matching_engine': unknown engine %r "
            "(this build supports %s)" % (engine, ", ".join(MATCHING_ENGINES))
        )
    shards = (
        shard_count
        if shard_count is not None
        else config_state.get("shard_count", 4)
    )
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ConfigError(
            "snapshot field 'shard_count': expected a positive integer, "
            "got %r" % (shards,)
        )
    return engine, shards


def restore(
    state: Dict,
    universe=None,
    matching_engine: "str | None" = None,
    shard_count: "int | None" = None,
) -> Broker:
    """Rebuild a broker from a :func:`snapshot` dict.

    ``matching_engine``/``shard_count`` override the snapshot's values,
    so a snapshot taken under one engine can be restored under another
    (an operator migration path).  The restored broker's shared-
    automaton mirror is rebuilt lazily from the restored table; on an
    engine or shard-count *switch* the broker-global match-cache
    generation is additionally bumped, so no stamp minted under the old
    engine can be mistaken for current (a same-engine restore keeps
    the ordinary cold-start contract: empty caches, generation 0)."""
    if not isinstance(state, dict) or "config" not in state:
        raise PersistenceError(
            "malformed broker snapshot: missing 'config'"
        )
    engine, shards = _validated_matching(
        state["config"], matching_engine, shard_count
    )
    try:
        config_state = state["config"]
        config = RoutingConfig(
            advertisements=config_state["advertisements"],
            covering=config_state["covering"],
            merging=MergingMode(config_state["merging"]),
            max_imperfect_degree=config_state["max_imperfect_degree"],
            merge_interval=config_state["merge_interval"],
            advert_covering=config_state.get("advert_covering", False),
            matching_engine=engine,
            shard_count=shards,
            views=config_state.get("views", False),
            view_window=config_state.get("view_window", 64),
            view_hot_threshold=config_state.get("view_hot_threshold", 3),
            view_max=config_state.get("view_max", 128),
        )
        broker = Broker(state["broker_id"], config=config, universe=universe)
        for neighbor in state["neighbors"]:
            broker.connect(neighbor)
        for client in state["local_clients"]:
            broker.attach_client(client)
        for entry in state["srt"]:
            advert = advert_from_obj(entry["advert"])
            broker.srt.add(
                entry["adv_id"],
                advert,
                entry["last_hop"],
                entry.get("publisher_id", ""),
            )
            if broker.advert_covers is not None:
                broker.advert_covers.add(
                    entry["adv_id"], advert, entry["last_hop"]
                )
        for item in state["subscriptions"]:
            expr = parse_xpath(item["expr"])
            for key in item["keys"]:
                if broker.config.covering:
                    broker.tree.insert(expr, key)
                else:
                    broker.flat.add(expr, key)
        # Subscriptions above went straight into the table, behind the
        # shared-automaton mirror's back: rebuild it lazily on the
        # first publication the restored broker matches.  (Automaton
        # state is derived, so snapshots never carry it — a restored
        # broker re-derives it from the restored table, same as the
        # match caches starting cold.  Materialized views are derived
        # state too: a restored broker starts with an empty
        # ViewManager and rewarms from live traffic.)  On an engine or
        # shard-count switch the generation bump makes the staleness
        # explicit — no stamp minted under the snapshotted engine can
        # be mistaken for current; a same-engine restore keeps the
        # cold-start contract of generation 0.
        broker._mark_shared_dirty()
        if (
            engine != config_state.get("matching_engine", "auto")
            or shards != config_state.get("shard_count", 4)
        ):
            broker._invalidate_match_cache()
        for item in state["forwarded"]:
            expr = parse_xpath(item["expr"])
            for neighbor in item["neighbors"]:
                broker.forwarded.mark(expr, neighbor)
        for client, exprs in state.get("client_subs", {}).items():
            for text in exprs:
                broker.client_subs[client].add(parse_xpath(text))
        if broker._merge_registry is not None:
            registry = broker._merge_registry
            for item in state.get("mergers", ()):
                merger = parse_xpath(item["expr"])
                bucket = registry.constituents.setdefault(merger, {})
                direct = registry.direct.setdefault(merger, set())
                direct.update(item.get("direct", ()))
                for entry in item.get("constituents", ()):
                    bucket.setdefault(
                        parse_xpath(entry["expr"]), set()
                    ).update(entry["hops"])
            for item in state.get("merge_log", ()):
                broker.merge_log.append(
                    MergeEvent(
                        merger=parse_xpath(item["merger"]),
                        replaced=tuple(
                            parse_xpath(text) for text in item["replaced"]
                        ),
                        degree=item["degree"],
                    )
                )
        return broker
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError("malformed broker snapshot: %s" % exc)


def restore_json(
    text: str,
    universe=None,
    matching_engine: "str | None" = None,
    shard_count: "int | None" = None,
) -> Broker:
    """Rebuild a broker from :func:`snapshot_json` output."""
    try:
        state = json.loads(text)
    except ValueError as exc:
        raise PersistenceError("invalid snapshot JSON: %s" % exc)
    return restore(
        state,
        universe=universe,
        matching_engine=matching_engine,
        shard_count=shard_count,
    )
