"""The content-based XML router: messages, tables, strategies, broker."""

from repro.broker.messages import (
    AdvertiseMsg,
    Message,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.broker.strategies import MergingMode, RoutingConfig
from repro.broker.tables import (
    ForwardedState,
    SRTEntry,
    SubscriptionRoutingTable,
)
from repro.broker.broker import Broker
from repro.broker.core import (
    MERGE_SWEEP_TIMER,
    BrokerCore,
    Deliver,
    Effect,
    Send,
    Telemetry,
    TimerRequest,
    canonical_effects,
)
from repro.broker.persistence import (
    PersistenceError,
    restore,
    restore_json,
    snapshot,
    snapshot_json,
)

__all__ = [
    "AdvertiseMsg",
    "Message",
    "PublishMsg",
    "SubscribeMsg",
    "UnadvertiseMsg",
    "UnsubscribeMsg",
    "MergingMode",
    "RoutingConfig",
    "ForwardedState",
    "SRTEntry",
    "SubscriptionRoutingTable",
    "Broker",
    "MERGE_SWEEP_TIMER",
    "BrokerCore",
    "Deliver",
    "Effect",
    "Send",
    "Telemetry",
    "TimerRequest",
    "canonical_effects",
    "PersistenceError",
    "restore",
    "restore_json",
    "snapshot",
    "snapshot_json",
]
