"""The content-based XML router (paper §2–4).

A broker knows only its neighbours.  It processes four message kinds and
returns, for each, the list of ``(destination, message)`` pairs to emit;
the overlay (or a test) performs the actual delivery.  Destinations are
neighbour broker ids or locally attached client ids.

Correctness note on covering suppression: "do not forward a covered
subscription" must be applied *per neighbour*.  Suppose ``s1`` arrives
from neighbour X and is forwarded everywhere except X, then ``s2 ⊑ s1``
arrives from neighbour Y.  Hop-agnostic suppression would drop ``s2``
entirely — but X never received ``s1`` (it came from there), so
publishers behind X would never learn to route toward Y.  The rule
implemented here: forward ``s2`` to neighbour ``n`` unless some stored
subscription covering ``s2`` was already forwarded to ``n``.  The
delivery-equivalence test suite (tests/test_network_invariants.py)
checks every strategy delivers exactly the flooding baseline's
documents.

False positives: imperfect merging may route extra publications through
the network, but an edge broker delivers to a client only after
re-checking the client's *exact* subscriptions — clients are never
exposed to false positives (paper §4.3/§5).
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.obs.tracing import current_scope
from repro.cache import LRUCache
from repro.broker.messages import (
    AdvertiseMsg,
    Message,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.broker.strategies import MergingMode, RoutingConfig
from repro.broker.tables import ForwardedState, SubscriptionRoutingTable
from repro.covering.pathmatch import matches_path
from repro.covering.subscription_tree import SubscriptionTree
from repro.errors import ProtocolError, RoutingError
from repro.matching.engine import LinearMatcher
from repro.matching.shared_automaton import SharedAutomatonMatcher
from repro.merging.engine import MergeEvent, MergingEngine, PathUniverse
from repro.merging.registry import MergerRegistry
from repro.xpath.ast import XPathExpr

Outbound = List[Tuple[object, Message]]


class Broker:
    """One content-based router.

    Args:
        broker_id: unique overlay identifier.
        config: the routing strategy (see :class:`RoutingConfig`).
        universe: publication universe for merging-degree computation;
            required for PERFECT/IMPERFECT merging to be effective.
    """

    def __init__(
        self,
        broker_id: str,
        config: Optional[RoutingConfig] = None,
        universe: Optional[PathUniverse] = None,
    ):
        self.broker_id = broker_id
        self.config = config if config is not None else RoutingConfig.full()
        self.neighbors: Set[object] = set()
        self.local_clients: Set[object] = set()

        self.srt = SubscriptionRoutingTable()
        self.forwarded = ForwardedState()
        if self.config.advert_covering:
            from repro.adverts.covering import AdvertCoverSet

            self.advert_covers: Optional[AdvertCoverSet] = AdvertCoverSet()
        else:
            self.advert_covers = None
        if self.config.covering:
            self.tree: Optional[SubscriptionTree] = SubscriptionTree()
            self.flat: Optional[LinearMatcher] = None
        else:
            self.tree = None
            self.flat = LinearMatcher()

        #: The shared-automaton publication matcher (``matching_engine:
        #: "shared"``): a mirror index over the authoritative table
        #: above, maintained incrementally on SUB/UNSUB and rebuilt
        #: lazily after bulk rewrites (merge sweeps, snapshot restore).
        #: The tree/flat table keeps driving *forwarding* decisions —
        #: the mirror only answers "which keys match this publication".
        if self.config.matching_engine == "shared":
            self.shared: Optional[SharedAutomatonMatcher] = (
                SharedAutomatonMatcher()
            )
        elif self.config.matching_engine == "sharded":
            from repro.matching.sharded import ShardedMatcher

            self.shared = ShardedMatcher(shard_count=self.config.shard_count)
            # A rebalance must never migrate expressions out of a shard
            # the pending dirty-rebuild is about to discard: the engine
            # rebuilds through this hook first (see ShardedMatcher.
            # mark_stale and tests/test_sharded_matcher.py).
            self.shared.set_rebuild_hook(self._rebuild_shared_for_engine)
        else:
            self.shared = None
        self._sharded = self.config.matching_engine == "sharded"
        self._shared_dirty = False
        #: Optional ``concurrent.futures`` executor for fanning a
        #: publication's shard probes out concurrently; installed by
        #: the runtime backends (see ``BrokerCore.set_matching_executor``
        #: and docs/runtime.md), never owned by the broker.
        self.matching_executor = None

        self._merger: Optional[MergingEngine] = None
        self._merge_registry: Optional[MergerRegistry] = None
        if self.config.merging is not MergingMode.OFF:
            max_degree = (
                0.0
                if self.config.merging is MergingMode.PERFECT
                else self.config.max_imperfect_degree
            )
            self._merger = MergingEngine(
                universe=universe, max_degree=max_degree
            )
            self._merge_registry = MergerRegistry()
        self._subs_since_merge = 0
        #: Applied merge events, in order — the audit oracle attributes
        #: false positives to these (persisted across crash recovery).
        self.merge_log: List[MergeEvent] = []

        # Exact client subscriptions: the edge-delivery filter.
        self.client_subs: Dict[object, Set[XPathExpr]] = defaultdict(set)
        self.stats: Dict[str, int] = defaultdict(int)

        #: Edge materialized views (docs/views.md): routing memos plus
        #: replay windows for hot publication groups.  Rebuildable
        #: state — never persisted, dropped on crash, rewarmed lazily.
        if self.config.views:
            from repro.views import ViewManager

            self.views: Optional[ViewManager] = ViewManager(
                window=self.config.view_window,
                hot_threshold=self.config.view_hot_threshold,
                max_views=self.config.view_max,
            )
        else:
            self.views = None
        #: True while the destinations just computed came from a view
        #: memo (consulted by the publish handlers to mark deliveries).
        self._served_via_view = False
        #: ``(client_id, msg_id)`` pairs whose Deliver effect must be
        #: classified as ViewServe; drained by the broker core.
        self._view_served_marks: Set[Tuple[object, int]] = set()

        #: Publication-match memo: ``(path, attribute fingerprint)`` →
        #: ``(generation, frozen match keys)``.  The generation counter
        #: is bumped by every SUB/UNSUB/ADV/UNADV/merge, so an entry
        #: written before any routing-state change reads as stale and
        #: is recomputed — cached destination sets are never wrong.
        #: Deliberately *not* persisted: a restored broker starts cold.
        self.match_cache = LRUCache(maxsize=4096)
        self.match_cache_stale = 0
        self._match_generation = 0

    # -- wiring --------------------------------------------------------------

    def connect(self, neighbor_id: object):
        """Attach a neighbouring broker."""
        if neighbor_id == self.broker_id:
            raise RoutingError("a broker cannot neighbour itself")
        self.neighbors.add(neighbor_id)

    def attach_client(self, client_id: object):
        """Attach a local client (publisher or subscriber)."""
        if client_id in self.neighbors:
            raise RoutingError("%r is already a neighbour" % (client_id,))
        self.local_clients.add(client_id)

    # -- dispatch --------------------------------------------------------------

    #: kind -> (handler name, timer metric); isinstance order matters
    #: only for subclasses of these five, which the protocol forbids.
    _DISPATCH = (
        (AdvertiseMsg, "handle_advertise", "broker.handle.advertise"),
        (UnadvertiseMsg, "handle_unadvertise", "broker.handle.unadvertise"),
        (SubscribeMsg, "handle_subscribe", "broker.handle.subscribe"),
        (UnsubscribeMsg, "handle_unsubscribe", "broker.handle.unsubscribe"),
        (PublishMsg, "handle_publish", "broker.handle.publish"),
    )

    def handle(self, message: Message, from_hop: object) -> Outbound:
        """Process one message; returns the messages to emit.

        Unknown message kinds are a protocol violation: they raise
        :class:`~repro.errors.ProtocolError` (and count under the
        ``broker.unknown_kind`` metric) instead of being dropped, so a
        malformed peer is surfaced at the first bad message.
        """
        for cls, handler_name, metric in self._DISPATCH:
            if isinstance(message, cls):
                self.stats[message.kind] += 1
                handler = getattr(self, handler_name)
                registry = obs.get_registry()
                if not registry.enabled:
                    return handler(message, from_hop)
                with registry.timer(metric):
                    return handler(message, from_hop)
        obs.inc("broker.unknown_kind")
        self.stats["unknown"] += 1
        raise ProtocolError(
            "broker %r received unknown message kind %r"
            % (self.broker_id, getattr(message, "kind", type(message).__name__))
        )

    # -- advertisements ----------------------------------------------------------

    def handle_advertise(self, msg: AdvertiseMsg, from_hop: object) -> Outbound:
        """Flood the advertisement and replay intersecting subscriptions
        toward it (so subscription/advertisement arrival order does not
        matter)."""
        if not self.srt.add(msg.adv_id, msg.advert, from_hop, msg.publisher_id):
            # duplicate (flooding cycle or at-least-once redelivery,
            # e.g. a neighbour re-announcing after crash recovery):
            # flooding terminates here and no state changes.
            self.stats["redelivered"] += 1
            obs.inc("broker.redelivered.advertise")
            return []
        self._invalidate_match_cache()
        flood = True
        if self.advert_covers is not None:
            flood = self.advert_covers.add(msg.adv_id, msg.advert, from_hop)
        out: Outbound = (
            [(n, msg) for n in self.neighbors if n != from_hop]
            if flood
            else []
        )
        if self.config.advertisements:
            out.extend(self._replay_subscriptions(msg, from_hop))
        return out

    def _replay_subscriptions(
        self, msg: AdvertiseMsg, from_hop: object
    ) -> Outbound:
        """Forward stored subscriptions that intersect a new advertisement
        toward its last hop, unless already sent or already covered there."""
        if from_hop in self.local_clients or from_hop is None:
            return []
        out: Outbound = []
        for expr in self._forwardable_exprs():
            if self.forwarded.was_sent(expr, from_hop):
                continue
            if not expr_intersects(msg, expr):
                continue
            if self._covered_at(expr, from_hop):
                continue
            keys = self._keys_of(expr)
            if keys == {from_hop}:
                continue  # its only consumer lies behind that hop
            out.append((from_hop, SubscribeMsg(expr=expr)))
            self.forwarded.mark(expr, from_hop)
        return out

    def handle_unadvertise(
        self, msg: UnadvertiseMsg, from_hop: object
    ) -> Outbound:
        """Retract an advertisement (extension; the paper's evaluation
        never unadvertises).  With advertisement covering enabled,
        advertisements the retracted one was suppressing become maximal
        and must be flooded now."""
        entries = {
            entry.adv_id: entry for entry in self.srt.entries()
        }
        if not self.srt.remove(msg.adv_id):
            self.stats["redelivered"] += 1
            obs.inc("broker.redelivered.unadvertise")
            return []
        self._invalidate_match_cache()
        out: Outbound = [(n, msg) for n in self.neighbors if n != from_hop]
        if self.advert_covers is not None:
            for promoted_id in self.advert_covers.remove(msg.adv_id):
                entry = entries.get(promoted_id)
                if entry is None:
                    continue
                promoted_msg = AdvertiseMsg(
                    adv_id=entry.adv_id,
                    advert=entry.advert,
                    publisher_id=entry.publisher_id,
                )
                out.extend(
                    (n, promoted_msg)
                    for n in self.neighbors
                    if n != entry.last_hop
                )
        return out

    # -- subscriptions ------------------------------------------------------------

    def handle_subscribe(self, msg: SubscribeMsg, from_hop: object) -> Outbound:
        expr = msg.expr
        merge_registry = self._merge_registry
        if from_hop in self.local_clients and self.views is not None:
            # Late-subscriber replay: every retained window whose group
            # this expression matches is queued for this client before
            # the tables mutate (idempotent — clients deduplicate on
            # (doc_id, path_id), so a re-subscription replays nothing
            # the client has not already dropped as duplicate).
            scope = current_scope()
            wall0 = perf_counter() if scope is not None else 0.0
            queued = self.views.queue_replays_for(from_hop, expr)
            if scope is not None and queued:
                scope.sub_span(
                    "view.replay", wall0, perf_counter(),
                    client=str(from_hop), messages=queued,
                )
        if from_hop in self._keys_of(expr):
            # At-least-once redelivery of a subscription this broker
            # already holds for this hop: re-applying it must not touch
            # the covering tree, last-hop tables or the merge cadence —
            # everything it could trigger already happened.
            if merge_registry is not None and merge_registry.is_merger(expr):
                # The hop subscribed the merger expression itself; its
                # interest must outlive the constituents it may also
                # contribute through.
                merge_registry.add_direct(expr, from_hop)
            self.stats["redelivered"] += 1
            obs.inc("broker.redelivered.subscribe")
            if from_hop in self.local_clients:
                self._client_sub_add(from_hop, expr)
            return []
        if (
            merge_registry is not None
            and merge_registry.find_contribution(expr, from_hop) is not None
        ):
            # A constituent this broker merged away: the merger already
            # carries this hop's interest, so the routing state is
            # complete — only the exact edge filter needs the expr.
            self.stats["redelivered"] += 1
            obs.inc("broker.merge.constituent_resubscribe")
            if from_hop in self.local_clients:
                self._client_sub_add(from_hop, expr)
            return []
        if from_hop in self.local_clients:
            self._client_sub_add(from_hop, expr)
        self._invalidate_match_cache()
        self._shared_add(expr, from_hop)

        out: Outbound = []
        if self.config.covering:
            scope = current_scope()
            wall0 = perf_counter() if scope is not None else 0.0
            outcome = self.tree.insert(expr, from_hop)
            targets = self._subscription_targets(expr, from_hop)
            for n in sorted(targets, key=str):
                if self.forwarded.was_sent(expr, n):
                    continue
                if self._covered_at(expr, n, exclude=expr):
                    continue
                out.append((n, SubscribeMsg(expr=expr)))
                self.forwarded.mark(expr, n)
            # Unsubscribe now-covered subscriptions from the hops that
            # just received (or already had) the covering expression.
            covered_now = self.forwarded.neighbors_for(expr)
            for descendant in self._descendant_exprs(outcome.node):
                for n in list(self.forwarded.neighbors_for(descendant)):
                    if n in covered_now:
                        out.append((n, UnsubscribeMsg(expr=descendant)))
                        self.forwarded.unmark(descendant, n)
            if scope is not None:
                scope.sub_span(
                    "covering.check", wall0, perf_counter(),
                    forwards=len(out),
                )
        else:
            self.flat.add(expr, from_hop)
            targets = self._subscription_targets(expr, from_hop)
            for n in sorted(targets, key=str):
                if self.forwarded.was_sent(expr, n):
                    continue
                out.append((n, SubscribeMsg(expr=expr)))
                self.forwarded.mark(expr, n)

        out.extend(self._maybe_merge())
        return out

    def _subscription_targets(
        self, expr: XPathExpr, from_hop: object
    ) -> Set[object]:
        """Where a subscription wants to go: toward intersecting
        advertisements, or everywhere (flooding) without them."""
        if self.config.advertisements:
            targets = {
                hop
                for hop in self.srt.matching_last_hops(expr)
                if hop in self.neighbors
            }
        else:
            targets = set(self.neighbors)
        targets.discard(from_hop)
        return targets

    def _covered_at(
        self,
        expr: XPathExpr,
        neighbor: object,
        exclude: Optional[XPathExpr] = None,
    ) -> bool:
        """Is some stored subscription covering *expr* already forwarded
        to *neighbor*?  Tree ancestors are exactly the stored coverers
        (the insert procedure descends into any covering node)."""
        if not self.config.covering:
            return False
        node = self.tree.node_of(expr)
        if node is None:
            return False
        current = node
        while current is not None and current.expr is not None:
            if current.expr != exclude and self.forwarded.was_sent(
                current.expr, neighbor
            ):
                return True
            current = current.parent
        return False

    def _descendant_exprs(self, node) -> List[XPathExpr]:
        result = []
        stack = list(node.children)
        while stack:
            current = stack.pop()
            result.append(current.expr)
            stack.extend(current.children)
        return result

    def _forwardable_exprs(self) -> List[XPathExpr]:
        """XPEs this broker is responsible for propagating."""
        if self.config.covering:
            return [node.expr for node in self.tree.iter_nodes()]
        return self.flat.exprs()

    def _keys_of(self, expr: XPathExpr) -> Set[object]:
        if self.config.covering:
            node = self.tree.node_of(expr)
            return set(node.keys) if node is not None else set()
        return self.flat.keys_of(expr)

    # -- unsubscriptions --------------------------------------------------------

    def handle_unsubscribe(
        self, msg: UnsubscribeMsg, from_hop: object
    ) -> Outbound:
        expr = msg.expr
        if from_hop in self.local_clients:
            subs = self.client_subs[from_hop]
            if expr in subs:
                subs.discard(expr)
                self._bump_client_epoch()
        merge_registry = self._merge_registry
        if from_hop not in self._keys_of(expr):
            if merge_registry is not None:
                merger = merge_registry.find_contribution(expr, from_hop)
                if merger is not None:
                    # The expr was merged away; this hop's interest now
                    # lives on the merger's key.  Retire the merger key
                    # once its last reason (constituent or direct
                    # subscription) for this hop is gone.
                    merge_registry.remove_contribution(merger, expr, from_hop)
                    obs.inc("broker.merge.constituent_unsubscribe")
                    if merge_registry.hop_needs(merger, from_hop):
                        return []
                    return self._retire_key(merger, from_hop)
            # unknown (already removed, or redelivered) — a no-op, so
            # retrying an unsubscription can never corrupt the tables.
            self.stats["redelivered"] += 1
            obs.inc("broker.redelivered.unsubscribe")
            return []
        if merge_registry is not None and merge_registry.is_merger(expr):
            # Unsubscription of the merger expression itself: the key
            # must survive while any constituent behind this hop still
            # justifies it.
            merge_registry.remove_direct(expr, from_hop)
            if merge_registry.hop_needs(expr, from_hop):
                obs.inc("broker.merge.direct_unsubscribe_held")
                return []
        return self._retire_key(expr, from_hop)

    def _retire_key(self, expr: XPathExpr, from_hop: object) -> Outbound:
        """Remove *expr*'s key for *from_hop* from the routing table and
        emit the resulting retractions/promotions.  Every UNSUBSCRIBE
        emitted here goes through :meth:`_emit_retractions`, which drops
        the forwarding marks atomically with the emission — a mark must
        never outlive the upstream entry it describes (it would suppress
        a later re-forward of the same expression)."""
        self._invalidate_match_cache()
        self._shared_remove(expr, from_hop)
        out: Outbound = []
        if self.config.covering:
            outcome = self.tree.remove(expr, from_hop)
            if not outcome.removed:
                return out
            out.extend(self._emit_retractions(expr))
            # Children the removed node was covering may now need their
            # own propagation.
            for promoted in outcome.promoted:
                targets = self._subscription_targets(promoted, None)
                for n in sorted(targets, key=str):
                    if self.forwarded.was_sent(promoted, n):
                        continue
                    if self._covered_at(promoted, n):
                        continue
                    keys = self._keys_of(promoted)
                    if keys == {n}:
                        continue
                    out.append((n, SubscribeMsg(expr=promoted)))
                    self.forwarded.mark(promoted, n)
        else:
            before = len(self.flat)
            self.flat.remove(expr, from_hop)
            if len(self.flat) < before:
                out.extend(self._emit_retractions(expr))
        if (
            self._merge_registry is not None
            and self._merge_registry.is_merger(expr)
            and not self._keys_of(expr)
        ):
            self._merge_registry.forget(expr)
        return out

    def _emit_retractions(self, expr: XPathExpr) -> Outbound:
        """UNSUBSCRIBE *expr* from every neighbour it was forwarded to,
        clearing the marks in the same step."""
        return [
            (n, UnsubscribeMsg(expr=expr)) for n in self.forwarded.drop(expr)
        ]

    # -- publications --------------------------------------------------------------

    def handle_publish(self, msg: PublishMsg, from_hop: object) -> Outbound:
        destinations = self._publish_destinations(
            msg.publication, from_hop, message=msg
        )
        if self.views is not None and self._served_via_view:
            marks = self._view_served_marks
            for destination in destinations:
                if destination in self.local_clients:
                    marks.add((destination, msg.msg_id))
        return [(destination, msg) for destination in destinations]

    def handle_publish_batch(
        self, messages: List[PublishMsg], from_hop: object
    ) -> Outbound:
        """Route a batch of publications arriving from one hop.

        Identical publications — same path and same attribute
        fingerprint, the common case when a document's paths fan out or
        several documents share hot paths — are grouped and matched
        once; the destination list is reused across the whole group.
        """
        registry = obs.get_registry()
        if not registry.enabled:
            return self._handle_publish_batch(messages, from_hop)
        with registry.timer("broker.handle.publish_batch"):
            out = self._handle_publish_batch(messages, from_hop)
        registry.histogram("broker.batch.size").record(len(messages))
        return out

    def _handle_publish_batch(
        self, messages: List[PublishMsg], from_hop: object
    ) -> Outbound:
        self.stats["publish"] += len(messages)
        out: Outbound = []
        groups: Dict[tuple, Tuple[List[object], bool]] = {}
        for msg in messages:
            publication = msg.publication
            group_key = (publication.path, publication.attributes)
            cached = groups.get(group_key)
            if cached is None:
                destinations = self._publish_destinations(
                    publication, from_hop, message=msg
                )
                served = self.views is not None and self._served_via_view
                cached = groups[group_key] = (destinations, served)
            else:
                destinations, served = cached
                if self.views is not None:
                    # Later members of a served or freshly-materialized
                    # group still belong in the replay window.
                    self.views.capture(
                        publication.path, publication.attributes, msg
                    )
            if served:
                marks = self._view_served_marks
                for destination in destinations:
                    if destination in self.local_clients:
                        marks.add((destination, msg.msg_id))
            for destination in destinations:
                out.append((destination, msg))
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("broker.batch.publications").inc(len(messages))
            registry.counter("broker.batch.groups").inc(len(groups))
        return out

    def _publish_destinations(
        self, publication, from_hop: object, message=None
    ) -> List[object]:
        """Destinations for one publication: matched keys minus the
        arrival hop, with the exact edge-delivery recheck applied to
        local clients.  With views enabled a live view memo serves the
        whole decision — byte-identical to the core route, because the
        memo is stamped with the match generation *and* the client-
        subscription epoch and dropped on any mismatch."""
        if self.views is None:
            keys = self._publication_keys(publication)
            destinations: List[object] = []
            attribute_maps = None
            maps_ready = False
            for key in sorted(keys, key=str):
                if key == from_hop:
                    continue
                if key in self.local_clients:
                    if not maps_ready:
                        attribute_maps = publication.attribute_maps()
                        maps_ready = True
                    if self._client_wants(
                        key, publication.path, attribute_maps
                    ):
                        destinations.append(key)
                elif key in self.neighbors:
                    destinations.append(key)
            return destinations
        return self._publish_destinations_viewed(
            publication, from_hop, message
        )

    def _publish_destinations_viewed(
        self, publication, from_hop: object, message=None
    ) -> List[object]:
        """The view-enabled routing path (see docs/views.md): serve a
        repeat publication from the group's memo, or route through the
        core and feed the group's heat/window."""
        views = self.views
        self._served_via_view = False
        path = publication.path
        attrs_key = publication.attributes
        stamp = (self._match_generation, views.client_epoch)
        registry = obs.get_registry()
        scope = current_scope()
        timed = registry.enabled or scope is not None
        wall0 = perf_counter() if timed else 0.0
        served = views.serve(path, attrs_key, stamp)
        if served is not None:
            keys, wanting = served
            destinations = [
                key
                for key in sorted(keys, key=str)
                if key != from_hop
                and (
                    key in wanting
                    if key in self.local_clients
                    else key in self.neighbors
                )
            ]
            self._served_via_view = True
            if message is not None:
                views.capture(path, attrs_key, message)
            if timed:
                wall1 = perf_counter()
                if registry.enabled:
                    registry.histogram("views.serve").record(wall1 - wall0)
                if scope is not None:
                    scope.sub_span(
                        "view.serve", wall0, wall1,
                        keys=len(keys), delivered=len(destinations),
                    )
            return destinations
        keys = self._publication_keys(publication)
        destinations = []
        wanting: Set[object] = set()
        attribute_maps = None
        maps_ready = False
        for key in sorted(keys, key=str):
            if key in self.local_clients:
                # The exact filter runs even for the arrival hop: the
                # memo must hold every local decision so a later serve
                # (from any hop) stays byte-identical.
                if not maps_ready:
                    attribute_maps = publication.attribute_maps()
                    maps_ready = True
                if self._client_wants(key, path, attribute_maps):
                    wanting.add(key)
                    if key != from_hop:
                        destinations.append(key)
            elif key != from_hop and key in self.neighbors:
                destinations.append(key)
        if message is not None:
            views.observe(
                path, attrs_key, frozenset(keys), frozenset(wanting),
                stamp, message,
            )
        if registry.enabled:
            registry.histogram("views.route").record(
                perf_counter() - wall0
            )
        return destinations

    def _publication_keys(self, publication) -> frozenset:
        """Matched subscriber keys for *publication*, memoised on
        ``(path, attribute fingerprint)`` under the current routing-state
        generation (see ``match_cache``)."""
        if self._sharded:
            # The sharded engine carries its own per-shard caches with
            # per-shard generations — strictly finer-grained than the
            # broker-global generation stamp, so the global memo is
            # bypassed entirely (one SUB would otherwise stale every
            # entry here, which is exactly what sharding removes).
            return self._publication_keys_sharded(publication)
        cache_key = (publication.path, publication.attributes)
        registry = obs.get_registry()
        scope = current_scope()
        wall0 = perf_counter() if scope is not None else 0.0
        entry = self.match_cache.get(cache_key)
        cache_state = "miss"
        if entry is not None:
            if entry[0] == self._match_generation:
                if registry.enabled:
                    registry.counter("broker.match_cache.hits").inc()
                if scope is not None:
                    scope.sub_span(
                        "match", wall0, perf_counter(),
                        cache="hit", keys=len(entry[1]),
                    )
                return entry[1]
            cache_state = "stale"
            self.match_cache_stale += 1
            if registry.enabled:
                registry.counter("broker.match_cache.stale").inc()
        elif registry.enabled:
            registry.counter("broker.match_cache.misses").inc()
        path = publication.path
        attributes = publication.attribute_maps()
        if self.shared is not None:
            keys = frozenset(self._shared_engine().match(path, attributes))
            engine = "shared"
        elif self.config.covering:
            keys = frozenset(self.tree.match_keys(path, attributes))
            engine = "tree"
        else:
            keys = frozenset(self.flat.match(path, attributes))
            engine = "flat"
        self.match_cache.put(cache_key, (self._match_generation, keys))
        if scope is not None:
            scope.sub_span(
                "match", wall0, perf_counter(),
                cache=cache_state,
                engine=engine,
                keys=len(keys),
            )
        return keys

    def _publication_keys_sharded(self, publication) -> frozenset:
        """Sharded-engine match: per-shard generation-checked caches,
        shard probes optionally fanned out on ``matching_executor``."""
        engine = self._shared_engine()
        registry = obs.get_registry()
        scope = current_scope()
        wall0 = perf_counter() if scope is not None else 0.0
        keys, misses = engine.match_cached(
            publication.path,
            publication.attributes,
            publication.attribute_maps,
            executor=self.matching_executor,
        )
        if registry.enabled:
            registry.counter("matching.shard.probes").inc()
            if misses:
                registry.counter("matching.shard.cache.misses").inc(misses)
            else:
                registry.counter("matching.shard.cache.hits").inc()
        if scope is not None:
            scope.sub_span(
                "match", wall0, perf_counter(),
                cache="hit" if misses == 0 else "miss",
                engine="sharded",
                keys=len(keys),
                shard_misses=misses,
            )
        return keys

    def _invalidate_match_cache(self):
        """Bump the match-cache generation: every entry written before
        this routing-state change is stale from now on."""
        self._match_generation += 1

    # -- materialized views ----------------------------------------------------

    def _bump_client_epoch(self):
        """The exact client-subscription table changed without a match-
        generation bump (redelivered SUB, early-return UNSUB): view
        memos capture ``_client_wants`` outcomes, so they must see it."""
        if self.views is not None:
            self.views.client_epoch += 1

    def _client_sub_add(self, client_id: object, expr: XPathExpr):
        subs = self.client_subs[client_id]
        if expr not in subs:
            subs.add(expr)
            self._bump_client_epoch()

    def _take_view_served(self):
        """Drain the (client_id, msg_id) pairs whose Deliver effects the
        core must classify as ViewServe."""
        if not self._view_served_marks:
            return ()
        marks = frozenset(self._view_served_marks)
        self._view_served_marks.clear()
        return marks

    def _take_pending_replays(self):
        """Drain queued late-subscriber window replays (the core turns
        them into Replay effects; the hosts deliver them)."""
        if self.views is None:
            return ()
        return self.views.take_pending_replays()

    # -- the shared-automaton mirror ------------------------------------------

    def _shared_add(self, expr: XPathExpr, key: object):
        """Mirror one subscription into the shared automaton (no-op
        while dirty — the pending rebuild captures the whole table)."""
        if self.shared is not None and not self._shared_dirty:
            self.shared.add(expr, key)

    def _shared_remove(self, expr: XPathExpr, key: object):
        if self.shared is not None and not self._shared_dirty:
            self.shared.remove(expr, key)

    def _mark_shared_dirty(self):
        """The routing table was rewritten behind the mirror's back
        (merge sweep, snapshot restore): rebuild lazily on next match."""
        if self.shared is not None:
            self._shared_dirty = True
            if self._sharded:
                # The sharded engine must know too: an explicit
                # rebalance on a stale table would migrate expressions
                # out of shards the pending rebuild is about to drop.
                self.shared.mark_stale()

    def _shared_engine(self):
        """The live mirror (``SharedAutomatonMatcher`` or
        ``ShardedMatcher`` — same maintenance contract), rebuilding it
        from the authoritative table first if a bulk rewrite
        invalidated it."""
        if self._shared_dirty:
            registry = obs.get_registry()
            if registry.enabled:
                with registry.timer("matching.shared.rebuild"):
                    self._rebuild_shared()
                registry.counter("matching.shared.rebuilds").inc()
            else:
                self._rebuild_shared()
            self._shared_dirty = False
            if self._sharded:
                self.shared.stale = False
        return self.shared

    def _rebuild_shared_for_engine(self):
        """Rebuild hook handed to the sharded engine: a rebalance that
        finds the mirror stale rebuilds it from the authoritative table
        first, clearing the broker's dirty flag with it (the states
        must never disagree)."""
        registry = obs.get_registry()
        if registry.enabled:
            with registry.timer("matching.shared.rebuild"):
                self._rebuild_shared()
            registry.counter("matching.shared.rebuilds").inc()
        else:
            self._rebuild_shared()
        self._shared_dirty = False

    def _rebuild_shared(self):
        self.shared.clear()
        shared_add = self.shared.add
        if self.config.covering:
            for node in self.tree.iter_nodes():
                expr = node.expr
                for key in node.keys:
                    shared_add(expr, key)
        else:
            for expr in self.flat.exprs():
                for key in self.flat.keys_of(expr):
                    shared_add(expr, key)

    def _client_wants(self, client_id: object, path, attributes=None) -> bool:
        """Exact-subscription recheck at the edge: merging-induced false
        positives stop here and never reach clients."""
        return any(
            matches_path(expr, path, attributes)
            for expr in self.client_subs[client_id]
        )

    # -- merging ---------------------------------------------------------------------

    def _maybe_merge(self) -> Outbound:
        if self._merger is None:
            return []
        self._subs_since_merge += 1
        if self._subs_since_merge < self.config.merge_interval:
            return []
        self._subs_since_merge = 0
        return self.run_merge_sweep()

    def run_merge_sweep(self) -> Outbound:
        """Apply one merging sweep and emit the routing updates: forward
        each merger, then retract the subscriptions it replaced.

        Every event is recorded in the constituent registry (and the
        merge log) even when nothing was ever forwarded — a purely
        local merge still rewrites the table, and the registry is what
        lets a later constituent UNSUBSCRIBE retire the merger."""
        if self._merger is None:
            return []
        scope = current_scope()
        wall0 = perf_counter() if scope is not None else 0.0
        if self.config.covering:
            report = self._merger.merge_tree(self.tree)
        else:
            report = self._merger.merge_flat(self.flat)
        if scope is not None:
            scope.sub_span(
                "merge.absorb", wall0, perf_counter(),
                events=len(report.events),
            )
        # Sweeps rewrite the table through the engine's internals, in
        # both covering and flat mode: cached destination sets computed
        # before the sweep are stale from here on — and so is the
        # shared-automaton mirror, which is rebuilt lazily from the
        # rewritten table.
        self._invalidate_match_cache()
        if report.events:
            self._mark_shared_dirty()
        out: Outbound = []
        for event in report.events:
            self._merge_registry.record(event)
            self.merge_log.append(event)
            replaced_hops: Set[object] = set()
            for old in event.replaced:
                replaced_hops |= self.forwarded.neighbors_for(old)
            if replaced_hops:
                targets = self._subscription_targets(event.merger, None)
                for n in sorted(targets, key=str):
                    if self.forwarded.was_sent(event.merger, n):
                        continue
                    if self._covered_at(event.merger, n, exclude=event.merger):
                        continue
                    out.append((n, SubscribeMsg(expr=event.merger)))
                    self.forwarded.mark(event.merger, n)
            for old in event.replaced:
                out.extend(self._emit_retractions(old))
        return out

    # -- metrics ------------------------------------------------------------------

    def routing_table_size(self) -> int:
        """Number of XPEs in the publication routing table (Fig. 6/7
        metric)."""
        if self.config.covering:
            return len(self.tree)
        return len(self.flat)

    def forwarded_table_size(self) -> int:
        """Number of XPEs this broker has propagated downstream."""
        return len(self.forwarded)

    def describe(self) -> Dict[str, object]:
        """Human-oriented state summary (CLI / debugging)."""
        summary = {
            "broker_id": self.broker_id,
            "strategy": self.config.name,
            "neighbors": sorted(map(str, self.neighbors)),
            "local_clients": sorted(map(str, self.local_clients)),
            "advertisements": len(self.srt),
            "subscriptions": self.routing_table_size(),
            "forwarded": len(self.forwarded),
            "messages_handled": dict(self.stats),
            "match_cache": dict(
                self.match_cache.stats(),
                stale=self.match_cache_stale,
                generation=self._match_generation,
            ),
        }
        if self.config.covering:
            summary["top_level_subscriptions"] = self.tree.top_level_size()
        if self.shared is not None:
            summary["matching_engine"] = self.config.matching_engine
            summary["shared_automaton"] = dict(
                self.shared.stats(), dirty=self._shared_dirty
            )
        if self.views is not None:
            summary["views"] = self.views.stats()
        if self._merge_registry is not None:
            summary["live_mergers"] = len(self._merge_registry)
            summary["merge_events"] = len(self.merge_log)
        if self.advert_covers is not None:
            summary["maximal_advertisements"] = (
                self.advert_covers.maximal_count()
            )
        return summary

    def __repr__(self):
        return "Broker(%r, %s)" % (self.broker_id, self.config.name)


def expr_intersects(msg: AdvertiseMsg, expr: XPathExpr) -> bool:
    """Advertisement/XPE intersection (delegates to the §3 algorithms)."""
    from repro.adverts.recursive import expr_and_advertisement

    return expr_and_advertisement(msg.advert, expr)
