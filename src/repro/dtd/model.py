"""Object model for Document Type Definitions (DTDs).

The paper derives publisher advertisements from the publisher's DTD
(paper §3.1): the DTD fixes the legal element hierarchy, so every
root-to-leaf element path of any conforming document can be predicted.
This module models exactly the part of a DTD needed for that purpose —
element declarations and their content models.  Attribute lists and
entities are accepted by the parser but ignored, as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple


class Occurrence(enum.Enum):
    """Occurrence indicator attached to a content particle."""

    ONE = ""
    OPTIONAL = "?"
    STAR = "*"
    PLUS = "+"

    @property
    def allows_zero(self):
        return self in (Occurrence.OPTIONAL, Occurrence.STAR)

    @property
    def allows_many(self):
        return self in (Occurrence.STAR, Occurrence.PLUS)


class ParticleKind(enum.Enum):
    """Structural kind of a content particle."""

    NAME = "name"
    SEQUENCE = "sequence"
    CHOICE = "choice"


@dataclass(frozen=True)
class Particle:
    """A node of a content-model expression tree.

    ``NAME`` particles reference a child element; ``SEQUENCE`` and
    ``CHOICE`` particles combine sub-particles with ``,`` and ``|``
    respectively.  Every particle carries an occurrence indicator.
    """

    kind: ParticleKind
    name: Optional[str] = None
    children: Tuple["Particle", ...] = ()
    occurrence: Occurrence = Occurrence.ONE

    def element_names(self):
        """All element names referenced anywhere inside this particle."""
        if self.kind is ParticleKind.NAME:
            return {self.name}
        names = set()
        for child in self.children:
            names |= child.element_names()
        return names

    def can_be_empty(self):
        """True when this particle can match zero element children."""
        if self.occurrence.allows_zero:
            return True
        if self.kind is ParticleKind.NAME:
            return False
        if self.kind is ParticleKind.SEQUENCE:
            return all(child.can_be_empty() for child in self.children)
        # CHOICE: empty if any alternative can be empty.
        return any(child.can_be_empty() for child in self.children)

    def __str__(self):
        if self.kind is ParticleKind.NAME:
            return "%s%s" % (self.name, self.occurrence.value)
        sep = ", " if self.kind is ParticleKind.SEQUENCE else " | "
        inner = sep.join(str(child) for child in self.children)
        return "(%s)%s" % (inner, self.occurrence.value)


class ContentKind(enum.Enum):
    """The four flavours of element content in XML 1.0."""

    EMPTY = "EMPTY"
    ANY = "ANY"
    PCDATA = "PCDATA"  # (#PCDATA) — text only
    MIXED = "MIXED"  # (#PCDATA | a | b)* — text plus elements
    CHILDREN = "CHILDREN"  # a structured content particle


@dataclass(frozen=True)
class ElementDecl:
    """A ``<!ELEMENT name content>`` declaration."""

    name: str
    kind: ContentKind
    particle: Optional[Particle] = None
    mixed_names: FrozenSet[str] = frozenset()

    def child_names(self):
        """Element names that may appear as direct children."""
        if self.kind is ContentKind.CHILDREN:
            return self.particle.element_names()
        if self.kind is ContentKind.MIXED:
            return set(self.mixed_names)
        return set()

    def can_be_leaf(self):
        """True when a conforming element may have no element children.

        Such an element can terminate a root-to-leaf path in some
        document instance, so advertisement generation must emit a path
        ending here.
        """
        if self.kind in (ContentKind.EMPTY, ContentKind.PCDATA,
                         ContentKind.ANY, ContentKind.MIXED):
            return True
        return self.particle.can_be_empty()


@dataclass
class DTD:
    """A parsed DTD: the root element plus all element declarations."""

    root: str
    elements: Dict[str, ElementDecl] = field(default_factory=dict)
    source: str = ""

    def __post_init__(self):
        if self.root not in self.elements:
            raise ValueError("root element %r is not declared" % self.root)

    def declaration(self, name):
        """The :class:`ElementDecl` for *name* (KeyError if undeclared)."""
        return self.elements[name]

    def child_map(self):
        """Mapping of element name -> sorted tuple of child element names.

        Undeclared children referenced by a content model are dropped —
        they could never appear in a validated document.  The map is
        computed once and cached (declarations are immutable).
        """
        cached = getattr(self, "_child_map_cache", None)
        if cached is None:
            known = set(self.elements)
            cached = {
                name: tuple(sorted(decl.child_names() & known))
                for name, decl in self.elements.items()
            }
            self._child_map_cache = cached
        return cached

    def element_names(self):
        return sorted(self.elements)

    def __contains__(self, name):
        return name in self.elements

    def __len__(self):
        return len(self.elements)
