"""A small DTD parser covering the element-declaration subset.

Supports::

    <!ELEMENT name EMPTY>
    <!ELEMENT name ANY>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT name (#PCDATA | a | b)*>
    <!ELEMENT name (a, (b | c)*, d?)+>

``<!ATTLIST ...>``, ``<!ENTITY ...>``, ``<!NOTATION ...>``, comments and
processing instructions are recognised and skipped — the routing system
only needs the element hierarchy (paper §3.1).
"""

from __future__ import annotations

import re

from repro.errors import DTDSyntaxError
from repro.dtd.model import (
    ContentKind,
    DTD,
    ElementDecl,
    Occurrence,
    Particle,
    ParticleKind,
)

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_SKIP_DECL_RE = re.compile(
    r"<!(?:ATTLIST|ENTITY|NOTATION)\b[^>]*>", re.DOTALL
)
_PI_RE = re.compile(r"<\?.*?\?>", re.DOTALL)
_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+(?P<name>[A-Za-z_][\w.:\-]*)\s+(?P<content>[^>]+)>",
    re.DOTALL,
)
_NAME_RE = re.compile(r"[A-Za-z_][\w.:\-]*")


def parse_dtd(text, root=None):
    """Parse DTD *text* into a :class:`~repro.dtd.model.DTD`.

    Args:
        text: the DTD source.
        root: the document root element.  Defaults to the first declared
            element, which is the convention of both sample DTDs.

    Raises:
        DTDSyntaxError: on malformed declarations, duplicate element
            declarations, or an undeclared root.
    """
    cleaned = _COMMENT_RE.sub(" ", text)
    cleaned = _PI_RE.sub(" ", cleaned)
    cleaned = _SKIP_DECL_RE.sub(" ", cleaned)

    elements = {}
    order = []
    for match in _ELEMENT_RE.finditer(cleaned):
        name = match.group("name")
        if name in elements:
            raise DTDSyntaxError("element %r declared twice" % name)
        decl = _parse_content(name, match.group("content").strip())
        elements[name] = decl
        order.append(name)

    if not elements:
        raise DTDSyntaxError("no element declarations found")

    leftover = _ELEMENT_RE.sub(" ", cleaned)
    if "<!ELEMENT" in leftover:
        raise DTDSyntaxError("malformed <!ELEMENT ...> declaration")

    if root is None:
        root = order[0]
    if root not in elements:
        raise DTDSyntaxError("root element %r is not declared" % root)
    return DTD(root=root, elements=elements, source=text)


def _parse_content(name, content):
    """Parse the content-model part of an element declaration."""
    if content == "EMPTY":
        return ElementDecl(name=name, kind=ContentKind.EMPTY)
    if content == "ANY":
        return ElementDecl(name=name, kind=ContentKind.ANY)
    if content.replace(" ", "") == "(#PCDATA)":
        return ElementDecl(name=name, kind=ContentKind.PCDATA)
    if "#PCDATA" in content:
        return _parse_mixed(name, content)
    particle, pos = _parse_particle(content, 0)
    pos = _skip_ws(content, pos)
    if pos != len(content):
        raise DTDSyntaxError(
            "trailing characters in content model of %r: %r"
            % (name, content[pos:])
        )
    return ElementDecl(name=name, kind=ContentKind.CHILDREN, particle=particle)


def _parse_mixed(name, content):
    """Parse mixed content: ``(#PCDATA | a | b)*``."""
    stripped = content.strip()
    if not (stripped.startswith("(") and stripped.rstrip("*").rstrip().endswith(")")):
        raise DTDSyntaxError("malformed mixed content for %r" % name)
    body = stripped.rstrip()
    if body.endswith("*"):
        body = body[:-1].rstrip()
    body = body[1:-1]  # strip parens
    parts = [part.strip() for part in body.split("|")]
    if parts[0] != "#PCDATA":
        raise DTDSyntaxError("#PCDATA must come first in mixed content")
    names = []
    for part in parts[1:]:
        if not _NAME_RE.fullmatch(part):
            raise DTDSyntaxError(
                "bad element name %r in mixed content of %r" % (part, name)
            )
        names.append(part)
    if names and not stripped.endswith("*"):
        raise DTDSyntaxError(
            "mixed content with elements must end with '*' (%r)" % name
        )
    return ElementDecl(
        name=name, kind=ContentKind.MIXED, mixed_names=frozenset(names)
    )


def _skip_ws(text, pos):
    while pos < len(text) and text[pos].isspace():
        pos += 1
    return pos


def _parse_particle(text, pos):
    """Recursive-descent parse of one content particle at *pos*."""
    pos = _skip_ws(text, pos)
    if pos >= len(text):
        raise DTDSyntaxError("unexpected end of content model")
    if text[pos] == "(":
        children = []
        separator = None
        pos += 1
        while True:
            child, pos = _parse_particle(text, pos)
            children.append(child)
            pos = _skip_ws(text, pos)
            if pos >= len(text):
                raise DTDSyntaxError("unterminated group in content model")
            if text[pos] == ")":
                pos += 1
                break
            if text[pos] not in ",|":
                raise DTDSyntaxError(
                    "expected ',', '|' or ')' in content model, got %r"
                    % text[pos]
                )
            if separator is None:
                separator = text[pos]
            elif text[pos] != separator:
                raise DTDSyntaxError(
                    "cannot mix ',' and '|' in one group"
                )
            pos += 1
        occurrence, pos = _parse_occurrence(text, pos)
        kind = (
            ParticleKind.CHOICE if separator == "|" else ParticleKind.SEQUENCE
        )
        if len(children) == 1 and separator is None:
            # A parenthesised single particle: fold the occurrence in
            # unless both the group and the child carry one.
            child = children[0]
            if occurrence is Occurrence.ONE:
                return child, pos
            if child.occurrence is Occurrence.ONE:
                return (
                    Particle(
                        kind=child.kind,
                        name=child.name,
                        children=child.children,
                        occurrence=occurrence,
                    ),
                    pos,
                )
        return (
            Particle(
                kind=kind, children=tuple(children), occurrence=occurrence
            ),
            pos,
        )
    match = _NAME_RE.match(text, pos)
    if match is None:
        raise DTDSyntaxError(
            "expected element name or '(' in content model at %r"
            % text[pos : pos + 20]
        )
    pos = match.end()
    occurrence, pos = _parse_occurrence(text, pos)
    return (
        Particle(
            kind=ParticleKind.NAME, name=match.group(0), occurrence=occurrence
        ),
        pos,
    )


def _parse_occurrence(text, pos):
    if pos < len(text) and text[pos] in "?*+":
        return Occurrence(text[pos]), pos + 1
    return Occurrence.ONE, pos
