"""DTD parsing and path analysis for publisher advertisement generation."""

from repro.dtd.model import (
    ContentKind,
    DTD,
    ElementDecl,
    Occurrence,
    Particle,
    ParticleKind,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.paths import (
    count_paths,
    element_positions,
    enumerate_paths,
    is_recursive,
    recursive_elements,
)
from repro.dtd.samples import (
    NITF_DTD_TEXT,
    PSD_DTD_TEXT,
    XMARK_DTD_TEXT,
    nitf_dtd,
    psd_dtd,
    xmark_dtd,
)

__all__ = [
    "ContentKind",
    "DTD",
    "ElementDecl",
    "Occurrence",
    "Particle",
    "ParticleKind",
    "parse_dtd",
    "count_paths",
    "element_positions",
    "enumerate_paths",
    "is_recursive",
    "recursive_elements",
    "NITF_DTD_TEXT",
    "PSD_DTD_TEXT",
    "XMARK_DTD_TEXT",
    "nitf_dtd",
    "psd_dtd",
    "xmark_dtd",
]
