"""Sample DTDs standing in for the paper's NITF and PSD DTDs.

The paper evaluates with the News Industry Text Format DTD (recursive)
and the Protein Sequence Database DTD (non-recursive).  Both are external
artifacts; what the experiments rely on is their *structure*:

* **NITF** — recursive (block-level elements nest inside themselves),
  a rich vocabulary, and an advertisement set roughly **35×** larger
  than PSD's (paper §5, "XPE Processing Time").
* **PSD** — non-recursive, a shallow fixed hierarchy, a small
  advertisement set.

``NITF_DTD`` and ``PSD_DTD`` below are structurally analogous stand-ins
that preserve those properties (recursion through ``block``/``bq``/
``ol``/``li``, depth ≤ 10, and a ~35:1 advertisement-count ratio — the
ratio is asserted by the test suite).
"""

from repro.dtd.parser import parse_dtd

NITF_DTD_TEXT = """
<!-- A structurally NITF-like news DTD: recursive block content. -->
<!ELEMENT nitf (head, body)>

<!ELEMENT head (title?, meta*, tobject?, docdata?, pubdata*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT tobject (tobject-property*, tobject-subject*)>
<!ELEMENT tobject-property EMPTY>
<!ELEMENT tobject-subject EMPTY>
<!ELEMENT docdata (doc-id?, urgency?, date-issue?, date-expire?, doc-scope*, series?, key-list?, identified-content?)>
<!ELEMENT doc-id EMPTY>
<!ELEMENT urgency EMPTY>
<!ELEMENT date-issue EMPTY>
<!ELEMENT date-expire EMPTY>
<!ELEMENT doc-scope EMPTY>
<!ELEMENT series EMPTY>
<!ELEMENT key-list (keyword*)>
<!ELEMENT keyword EMPTY>
<!ELEMENT identified-content (person | org | location | event | function)*>
<!ELEMENT person (#PCDATA)>
<!ELEMENT org (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT event (#PCDATA)>
<!ELEMENT function (#PCDATA)>
<!ELEMENT pubdata EMPTY>

<!ELEMENT body (body-head?, body-content*, body-end?)>
<!ELEMENT body-head (hedline?, note*, byline*, dateline*, abstract?)>
<!ELEMENT hedline (hl1, hl2*)>
<!ELEMENT hl1 (#PCDATA)>
<!ELEMENT hl2 (#PCDATA)>
<!ELEMENT note (body-content*)>
<!ELEMENT byline (person?, byttl?)>
<!ELEMENT byttl (#PCDATA)>
<!ELEMENT dateline (location?, story-date?)>
<!ELEMENT story-date (#PCDATA)>
<!ELEMENT abstract (p*)>

<!ELEMENT body-content (block | p | table | media | ol | ul | bq | fn | pre | hr)*>
<!ELEMENT block (block | p | hl2 | ol | ul | bq | pre)*>
<!ELEMENT p (#PCDATA | em | lang | pronounce | q | a)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT lang (#PCDATA)>
<!ELEMENT pronounce EMPTY>
<!ELEMENT q (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT table (caption?, tr*)>
<!ELEMENT caption (#PCDATA)>
<!ELEMENT tr (th | td)*>
<!ELEMENT th (#PCDATA)>
<!ELEMENT td (#PCDATA)>
<!ELEMENT media (media-reference*, media-caption*, media-producer?)>
<!ELEMENT media-reference EMPTY>
<!ELEMENT media-caption (p*)>
<!ELEMENT media-producer (#PCDATA)>
<!ELEMENT ol (li+)>
<!ELEMENT ul (li+)>
<!ELEMENT li (p | block | ol | ul)*>
<!ELEMENT bq (block | p)*>
<!ELEMENT fn (p*)>
<!ELEMENT pre (#PCDATA)>
<!ELEMENT hr EMPTY>

<!ELEMENT body-end (tagline?, bibliography?)>
<!ELEMENT tagline (#PCDATA)>
<!ELEMENT bibliography (#PCDATA)>
"""

PSD_DTD_TEXT = """
<!-- A structurally PSD-like protein database DTD: non-recursive. -->
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+, genetics?, classification?, keywords?, feature*, annotation*, summary, sequence)>
<!ELEMENT annotation (note-text*, evidence*)>
<!ELEMENT note-text (#PCDATA)>
<!ELEMENT evidence (#PCDATA)>

<!ELEMENT header (uid, accession+, created-date, seq-rev-date, txt-rev-date)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created-date (#PCDATA)>
<!ELEMENT seq-rev-date (#PCDATA)>
<!ELEMENT txt-rev-date (#PCDATA)>

<!ELEMENT protein (name, alt-name*, source?, function-text?, complex?, ec-number*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT alt-name (#PCDATA)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT function-text (#PCDATA)>
<!ELEMENT complex (#PCDATA)>
<!ELEMENT ec-number (#PCDATA)>

<!ELEMENT organism (formal, common?, variety?, source-note?, taxonomy?)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT variety (#PCDATA)>
<!ELEMENT source-note (#PCDATA)>
<!ELEMENT taxonomy (#PCDATA)>

<!ELEMENT reference (refinfo, accinfo*)>
<!ELEMENT refinfo (authors, citation, volume?, year, pages?, month?, title?, xrefs?)>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT xrefs (xref+)>
<!ELEMENT xref (db, dbuid)>
<!ELEMENT db (#PCDATA)>
<!ELEMENT dbuid (#PCDATA)>
<!ELEMENT accinfo (mol-type?, seq-spec?)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>

<!ELEMENT genetics (gene?, mapposition?, introns?, codon-usage?, gene-map?)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT mapposition (#PCDATA)>
<!ELEMENT introns (#PCDATA)>
<!ELEMENT codon-usage (#PCDATA)>
<!ELEMENT gene-map (#PCDATA)>

<!ELEMENT classification (superfamily?, family?, subfamily?)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT family (#PCDATA)>
<!ELEMENT subfamily (#PCDATA)>

<!ELEMENT keywords (keyword+)>
<!ELEMENT keyword (#PCDATA)>

<!ELEMENT feature (feature-type, description?, seq-spec2?, label?, status?)>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT seq-spec2 (#PCDATA)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT status (#PCDATA)>

<!ELEMENT summary (length, weight?, isoelectric-point?, checksum?)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT weight (#PCDATA)>
<!ELEMENT isoelectric-point (#PCDATA)>
<!ELEMENT checksum (#PCDATA)>

<!ELEMENT sequence (#PCDATA)>
"""


def nitf_dtd():
    """The NITF-like sample DTD (recursive), freshly parsed."""
    return parse_dtd(NITF_DTD_TEXT)


def psd_dtd():
    """The PSD-like sample DTD (non-recursive), freshly parsed."""
    return parse_dtd(PSD_DTD_TEXT)

XMARK_DTD_TEXT = """
<!-- A structurally XMark-like auction-site DTD: recursive through
     description paragraph lists (parlist/listitem). -->
<!ELEMENT site (regions, categories, people, open-auctions, closed-auctions)>

<!ELEMENT regions (africa?, asia?, europe?, namerica?, samerica?, oceania?)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT oceania (item*)>
<!ELEMENT item (location, quantity, name, payment?, description, shipping?, mailbox?)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>

<!ELEMENT description (text | parlist)>
<!ELEMENT parlist (listitem+)>
<!ELEMENT listitem (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT emph (#PCDATA)>

<!ELEMENT categories (category+)>
<!ELEMENT category (name2, description?)>
<!ELEMENT name2 (#PCDATA)>

<!ELEMENT people (person*)>
<!ELEMENT person (personname, emailaddress?, phone?, address?, creditcard?, profile?)>
<!ELEMENT personname (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, zipcode?)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business?, age?)>
<!ELEMENT interest (#PCDATA)>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>

<!ELEMENT open-auctions (open-auction*)>
<!ELEMENT open-auction (initial, reserve?, bidder*, current, itemref, seller, annotation?, type)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date2, time, personref, increase)>
<!ELEMENT date2 (#PCDATA)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref (#PCDATA)>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT annotation (author?, description?, happiness?)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT type (#PCDATA)>

<!ELEMENT closed-auctions (closed-auction*)>
<!ELEMENT closed-auction (seller2, buyer, itemref2, price, date3, quantity2, type2, annotation?)>
<!ELEMENT seller2 (#PCDATA)>
<!ELEMENT buyer (#PCDATA)>
<!ELEMENT itemref2 (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT date3 (#PCDATA)>
<!ELEMENT quantity2 (#PCDATA)>
<!ELEMENT type2 (#PCDATA)>
"""


def xmark_dtd():
    """The XMark-like sample DTD (auction site; recursive through
    parlist/listitem), freshly parsed."""
    return parse_dtd(XMARK_DTD_TEXT)
