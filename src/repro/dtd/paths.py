"""Path analysis over DTD element graphs.

Advertisement generation (paper §3.1) needs two facts about a DTD:

* the set of root-to-leaf element paths a conforming document can
  exhibit, and
* whether the DTD is *recursive* — contains elements reachable from
  themselves — in which case the path set is infinite and must be
  summarised with ``(...)+`` recursion patterns.

This module provides cycle detection and a bounded path enumerator that
also serves as the "path universe" used to compute merge imperfection
degrees (paper §4.3) and perfect-merger checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.dtd.model import DTD


def recursive_elements(dtd: DTD) -> Set[str]:
    """Element names that participate in a reachability cycle.

    An element is recursive when it can (transitively) contain itself.
    Implemented as an iterative Tarjan SCC over the child graph; members
    of non-trivial SCCs and self-looping elements are recursive.
    """
    graph = dtd.child_map()
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    result: Set[str] = set()

    def strongconnect(root):
        work = [(root, iter(graph.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in graph:
                    continue
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.update(component)
                elif node in graph.get(node, ()):
                    result.add(node)

    for name in graph:
        if name not in index_of:
            strongconnect(name)
    return result


def is_recursive(dtd: DTD) -> bool:
    """True when the DTD contains at least one recursive element."""
    return bool(recursive_elements(dtd))


def enumerate_paths(dtd: DTD, max_depth: int = 10) -> List[Tuple[str, ...]]:
    """All root-to-leaf element paths of length at most *max_depth*.

    A path may end at any element that :meth:`can_be_leaf` — an element
    whose content model admits zero element children in some instance.
    For recursive DTDs the enumeration is truncated at *max_depth*
    (paths that reach the bound without hitting a permissible leaf are
    dropped), matching the paper's practice of limiting document nesting
    depth for experimentation (§3.3, §5).

    The result is deterministic (depth-first, children in declaration
    order of the child map) and free of duplicates.
    """
    graph = dtd.child_map()
    results: List[Tuple[str, ...]] = []
    seen: Set[Tuple[str, ...]] = set()

    def visit(name, trail):
        trail = trail + (name,)
        decl = dtd.elements[name]
        children = graph.get(name, ())
        if decl.can_be_leaf() or not children:
            if trail not in seen:
                seen.add(trail)
                results.append(trail)
        if len(trail) >= max_depth:
            return
        for child in children:
            visit(child, trail)

    visit(dtd.root, ())
    return results


def count_paths(dtd: DTD, max_depth: int = 10) -> int:
    """Number of distinct bounded root-to-leaf paths (see
    :func:`enumerate_paths`)."""
    return len(enumerate_paths(dtd, max_depth))


def element_positions(
    paths: Iterable[Tuple[str, ...]]
) -> Dict[int, Set[str]]:
    """Which element names occur at which (1-based) path position.

    Used to estimate the false-positive rate of imperfect mergers: the
    paper's example (§4.3) reasons about "the elements allowed at the
    fourth position".
    """
    positions: Dict[int, Set[str]] = {}
    for path in paths:
        for index, name in enumerate(path, start=1):
            positions.setdefault(index, set()).add(name)
    return positions
