"""XML documents and their root-to-leaf path decomposition (paper §3.1).

Publishers submit entire XML documents; the edge broker decomposes each
document into its root-to-leaf element paths and routes those paths as
*publications*, each annotated with a ``doc_id`` and ``path_id``.  The
decomposition is transparent to clients — subscribers receive whole
documents.

Parsing uses the standard library's :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import XMLSyntaxError
from repro.xpath.ast import TEXT_KEY


@dataclass(frozen=True)
class Publication:
    """One routed unit: a root-to-leaf path of a document.

    ``attributes`` optionally carries one attribute mapping per path
    element (as tuples of ``(name, value)`` pairs, keeping the
    publication hashable) — the value-comparison extension; ``None``
    means the document carried no attributes on this path.
    """

    doc_id: str
    path_id: int
    path: Tuple[str, ...]
    attributes: Optional[Tuple[Tuple[Tuple[str, str], ...], ...]] = None

    def attribute_maps(self) -> Optional[Tuple[dict, ...]]:
        """The attributes as dicts aligned with :attr:`path`."""
        if self.attributes is None:
            return None
        return tuple(dict(pairs) for pairs in self.attributes)

    def __str__(self):
        return "%s#%d:/%s" % (self.doc_id, self.path_id, "/".join(self.path))


class XMLDocument:
    """A parsed XML document plus its path decomposition."""

    def __init__(self, root: ET.Element, doc_id: str, source: Optional[str] = None):
        self._root = root
        self.doc_id = doc_id
        self._source = source
        self._paths: Optional[List[Tuple[str, ...]]] = None
        self._annotated = None

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str, doc_id: str) -> "XMLDocument":
        """Parse XML *text*; raises :class:`XMLSyntaxError` on bad input."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise XMLSyntaxError("cannot parse document %r: %s" % (doc_id, exc))
        return cls(root=root, doc_id=doc_id, source=text)

    @classmethod
    def from_paths(
        cls, paths: Sequence[Sequence[str]], doc_id: str, text_filler: str = ""
    ) -> "XMLDocument":
        """Build a document whose decomposition is exactly *paths*.

        Paths sharing a prefix share elements (the natural tree merge);
        all paths must agree on the root element.  *text_filler* is
        placed in every leaf, which lets workload generators control the
        serialised size.
        """
        if not paths:
            raise ValueError("a document needs at least one path")
        roots = {path[0] for path in paths}
        if len(roots) != 1:
            raise ValueError("all paths must share the root element")
        root = ET.Element(paths[0][0])
        for path in paths:
            node = root
            for name in path[1:]:
                # Reuse the last child when it continues this path's
                # prefix; otherwise open a new branch.  Using the last
                # child (not "any child") keeps repeated path suffixes
                # distinct when a path occurs twice.
                last = node[-1] if len(node) else None
                if last is not None and last.tag == name:
                    node = last
                else:
                    node = ET.SubElement(node, name)
            if text_filler and not len(node):
                node.text = text_filler
        return cls(root=root, doc_id=doc_id)

    # -- views ---------------------------------------------------------------

    @property
    def root(self) -> ET.Element:
        return self._root

    def serialize(self) -> str:
        if self._source is not None:
            return self._source
        return ET.tostring(self._root, encoding="unicode")

    def size_bytes(self) -> int:
        return len(self.serialize().encode("utf-8"))

    def depth(self) -> int:
        return max(len(path) for path in self.paths())

    def paths(self) -> List[Tuple[str, ...]]:
        """The root-to-leaf element-name paths, in document order."""
        if self._paths is None:
            self._paths = [path for path, _attrs in self.annotated_paths()]
        return self._paths

    def annotated_paths(self):
        """Root-to-leaf paths with per-element attribute dicts."""
        if getattr(self, "_annotated", None) is None:
            self._annotated = list(_walk_annotated_paths(self._root))
        return self._annotated

    def publications(self) -> List[Publication]:
        """Decompose into annotated publications (paper §3.1).

        Attribute annotations are attached only when the path actually
        carries attributes, so attribute-free documents stay light.
        """
        result = []
        for i, (path, attrs) in enumerate(self.annotated_paths()):
            attributes = None
            if any(attrs):
                attributes = tuple(
                    tuple(sorted(mapping.items())) for mapping in attrs
                )
            result.append(
                Publication(
                    doc_id=self.doc_id,
                    path_id=i,
                    path=path,
                    attributes=attributes,
                )
            )
        return result

    def __repr__(self):
        return "XMLDocument(%r, %d paths, %d bytes)" % (
            self.doc_id,
            len(self.paths()),
            self.size_bytes(),
        )


def _annotations_of(element: ET.Element) -> dict:
    """Attributes plus the TEXT_KEY pseudo attribute for text content
    (enables ``[text()='v']`` predicates without a separate channel)."""
    annotations = dict(element.attrib)
    text = (element.text or "").strip()
    if text:
        annotations[TEXT_KEY] = text
    return annotations


def _walk_annotated_paths(element: ET.Element):
    """Depth-first root-to-leaf (tag path, attribute dicts) pairs."""
    stack = [(element, (element.tag,), (_annotations_of(element),))]
    while stack:
        node, trail, attrs = stack.pop()
        children = list(node)
        if not children:
            yield trail, attrs
            continue
        for child in reversed(children):
            stack.append(
                (
                    child,
                    trail + (child.tag,),
                    attrs + (_annotations_of(child),),
                )
            )
