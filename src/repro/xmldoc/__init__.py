"""XML document model and path decomposition."""

from repro.xmldoc.document import Publication, XMLDocument

__all__ = ["Publication", "XMLDocument"]
