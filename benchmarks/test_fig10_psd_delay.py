"""Figure 10 benchmark: notification delay vs. hops (PSD documents)."""

import pytest

from repro.experiments.fig10_11 import run_fig10


@pytest.mark.paper
def test_fig10_psd_notification_delay(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig10(scale=0.6), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    rows = result.rows()
    assert len(rows) >= 4
    # Paper shape: delay grows with hop count for every series.
    for key in ("2K_cov_ms", "2K_nocov_ms", "20K_cov_ms"):
        series = [row[key] for row in rows if row.get(key) is not None]
        assert series[-1] > series[0]
    # Covering is no slower than non-covering at the far end.
    last = rows[-1]
    assert last["20K_cov_ms"] <= last["20K_nocov_ms"] * 1.05
