"""Edge materialized views: the CI ``views`` lane.

The repeat-publication fast path (docs/views.md): once a publication
group is hot, the edge broker serves later publications of the group
from the view's routing memo — no matching-engine probe, no covering
walk, no per-client ``_client_wants`` rescan over the client's whole
subscription set.  This lane pins the win:

* one broker, :data:`SUBSCRIPTIONS` mass subscriptions behind a single
  edge client (the recheck scan the serve path elides grows with this),
* :data:`ROUNDS` rounds each republishing the same hot publication
  paths under fresh doc ids — a views-off broker re-routes every one,
  the views-on broker serves everything after the warmup round,
* identical routing decisions asserted every round.

Per-round timings land in ``views.repeat.on`` / ``views.repeat.off``
(plus the broker's own ``views.serve`` / ``views.route`` decision
histograms), gated bidirectionally by ``check_obs_regression.py
--only views.``.  The end-to-end assertion is the acceptance floor:
views at least :data:`SPEEDUP_FLOOR` x faster on hot repeats.
"""

import time

import pytest

from repro import obs
from repro.broker import Broker, PublishMsg, RoutingConfig, SubscribeMsg
from repro.workloads.mass import (
    MassWorkloadParams,
    generate_mass_subscriptions,
    generate_probe_paths,
)
from repro.xmldoc import Publication

SUBSCRIPTIONS = 8_000

#: Rounds — one histogram sample each, above the regression gate's
#: MIN_SAMPLES (30).
ROUNDS = 40

#: Hot publication paths republished every round.
PROBES_PER_ROUND = 12

#: The ISSUE's acceptance floor: hot-group repeat publications at least
#: this many times faster served from the view than re-routed through
#: the core.  Measured runs land far above it (the serve path is a dict
#: probe; the core route is an engine probe plus an 8k-expression
#: client recheck); the floor keeps the gate robust.
SPEEDUP_FLOOR = 2.0


def _distinct_probe_paths(count, params, seed):
    paths = []
    seen = set()
    batch_seed = seed
    while len(paths) < count:
        for path in generate_probe_paths(count, params, seed=batch_seed):
            if path not in seen:
                seen.add(path)
                paths.append(path)
                if len(paths) == count:
                    break
        batch_seed += 1
    return paths


def _build_broker(views, pairs):
    config = RoutingConfig(
        advertisements=False,
        covering=False,
        views=views,
        view_hot_threshold=1,
        view_window=8,
        view_max=256,
    )
    broker = Broker("b1", config=config)
    broker.connect("n1")
    broker.attach_client("c1")
    for expr, _key in pairs:
        broker.handle(SubscribeMsg(expr=expr, subscriber_id="c1"), "c1")
    return broker


def _publish_round(broker, paths, round_index):
    """Publish every hot path under a fresh doc id; returns the routing
    decisions (view-served and core-routed must agree exactly)."""
    decisions = []
    for path_index, path in enumerate(paths):
        out = broker.handle(
            PublishMsg(
                publication=Publication(
                    doc_id="r%d" % round_index,
                    path_id=path_index,
                    path=path,
                ),
                publisher_id="pub",
            ),
            "n1",
        )
        decisions.append(sorted(str(dest) for dest, _msg in out))
    return decisions


@pytest.mark.paper
def test_view_serving_accelerates_repeat_publications():
    params = MassWorkloadParams()
    pairs = generate_mass_subscriptions(SUBSCRIPTIONS, params, seed=7)
    paths = _distinct_probe_paths(PROBES_PER_ROUND, params, seed=8)
    registry = obs.get_registry()

    plain = _build_broker(False, pairs)
    viewed = _build_broker(True, pairs)

    # Warmup round: both route through the core; the views-on broker
    # materializes every hot group (threshold 1).
    warm_plain = _publish_round(plain, paths, 0)
    warm_viewed = _publish_round(viewed, paths, 0)
    assert warm_plain == warm_viewed
    assert viewed.views.stats()["views"] == len(paths)

    plain_seconds = 0.0
    viewed_seconds = 0.0
    for round_index in range(1, ROUNDS + 1):
        start = time.perf_counter()
        with registry.timer("views.repeat.off"):
            plain_decisions = _publish_round(plain, paths, round_index)
        plain_seconds += time.perf_counter() - start

        start = time.perf_counter()
        with registry.timer("views.repeat.on"):
            viewed_decisions = _publish_round(viewed, paths, round_index)
        viewed_seconds += time.perf_counter() - start

        assert viewed_decisions == plain_decisions, (
            "view-served routing diverged from the core route in round %d"
            % round_index
        )

    stats = viewed.views.stats()
    assert stats["serves"] == ROUNDS * len(paths)  # every repeat served
    registry.set_gauge("views.bench.hit_ratio", stats["hit_ratio"])
    registry.set_gauge("views.bench.subscriptions", SUBSCRIPTIONS)

    speedup = plain_seconds / viewed_seconds if viewed_seconds else 0.0
    print(
        "\n%d subscriptions, %d rounds x %d hot paths: views-off %.3fs, "
        "views-on %.3fs (%.1fx), hit ratio %.3f, %d views resident"
        % (SUBSCRIPTIONS, ROUNDS, len(paths), plain_seconds,
           viewed_seconds, speedup, stats["hit_ratio"], stats["views"])
    )
    assert speedup >= SPEEDUP_FLOOR, (
        "view serving only %.1fx faster than the core route on hot "
        "repeats (floor %.1fx)" % (speedup, SPEEDUP_FLOOR)
    )
