"""Ablations of individual algorithm choices called out in DESIGN.md.

* KMP vs. the naive scan in relative-XPE/advertisement matching (§3.2's
  claimed optimisation),
* the paper's Figure 3 algorithm vs. the exact NFA product matcher for
  simple-recursive advertisements,
* eager vs. lazy super-pointer maintenance in the subscription tree
  (the cost the paper warns about in §4.1),
* merge-interval sensitivity of the merging engine.
"""

import random

import pytest

from repro.adverts.generator import generate_advertisements
from repro.adverts.matching import rel_expr_and_adv, rel_expr_and_adv_naive
from repro.adverts.nfa import expr_and_advert_nfa
from repro.adverts.recursive import (
    _decompose_simple,
    abs_expr_and_sim_rec_adv,
)
from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.samples import nitf_dtd
from repro.merging.engine import MergingEngine
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)


@pytest.fixture(scope="module")
def nitf_queries_abs():
    params = XPathWorkloadParams(
        wildcard_prob=0.0, descendant_prob=0.0, relative_prob=0.0, min_length=3
    )
    return generate_queries(nitf_dtd(), 200, params=params, seed=31)


@pytest.fixture(scope="module")
def simple_recursive_adverts():
    return [
        advert
        for advert in generate_advertisements(nitf_dtd())
        if advert.kind == "simple-recursive"
    ]


@pytest.mark.paper
def test_kmp_vs_naive(benchmark):
    """KMP only engages on wildcard-free inputs; measure that case."""
    rng = random.Random(7)
    alphabet = ["a", "b", "c"]
    adverts = [
        tuple(rng.choice(alphabet) for _ in range(12)) for _ in range(300)
    ]
    params = XPathWorkloadParams(
        wildcard_prob=0.0, descendant_prob=0.0, relative_prob=1.0, min_length=2
    )
    queries = generate_queries(nitf_dtd(), 50, params=params, seed=8)

    def run(matcher):
        hits = 0
        for sub in queries:
            for advert in adverts:
                if matcher(advert, sub):
                    hits += 1
        return hits

    fast = benchmark.pedantic(
        lambda: run(rel_expr_and_adv), rounds=1, iterations=1
    )
    assert fast == run(rel_expr_and_adv_naive)


@pytest.mark.paper
def test_fig3_vs_nfa(
    benchmark, nitf_queries_abs, simple_recursive_adverts
):
    """The paper-faithful Figure 3 algorithm against the generic NFA on
    the same (absolute XPE, simple-recursive advert) pairs; both answers
    must agree."""
    adverts = simple_recursive_adverts[:150]
    decomposed = [(a, _decompose_simple(a)) for a in adverts]

    def run_fig3():
        return sum(
            abs_expr_and_sim_rec_adv(a1, a2, a3, sub)
            for sub in nitf_queries_abs
            for _a, (a1, a2, a3) in decomposed
        )

    def run_nfa():
        return sum(
            expr_and_advert_nfa(advert, sub)
            for sub in nitf_queries_abs
            for advert, _parts in decomposed
        )

    fig3_hits = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    assert fig3_hits == run_nfa()


@pytest.mark.paper
def test_super_pointer_cost(benchmark, paper_sets):
    """Eager super-pointer maintenance is the O(n)-per-insert cost the
    paper postpones; quantify it against the lazy default."""
    _, dataset_b = paper_sets
    exprs = dataset_b.exprs[:300]

    def build(eager):
        tree = SubscriptionTree(eager_super_pointers=eager)
        for index, expr in enumerate(exprs):
            tree.insert(expr, index)
        return tree

    eager_tree = benchmark.pedantic(
        lambda: build(True), rounds=1, iterations=1
    )
    lazy_tree = build(False)
    assert len(eager_tree) == len(lazy_tree)
    assert eager_tree.top_level_size() == lazy_tree.top_level_size()


@pytest.mark.paper
@pytest.mark.parametrize("interval", [50, 200, 800])
def test_merge_interval_sweep(benchmark, paper_sets, nitf_universe, interval):
    """Merging more often finds the same final table — the sweep is
    idempotent — but costs proportionally more sweeps."""
    _, dataset_b = paper_sets
    exprs = dataset_b.exprs[:800]

    def run():
        tree = SubscriptionTree()
        engine = MergingEngine(universe=nitf_universe, max_degree=0.1)
        for index, expr in enumerate(exprs):
            tree.insert(expr, index)
            if (index + 1) % interval == 0:
                engine.merge_tree(tree)
        engine.merge_tree(tree)
        return tree.top_level_size()

    benchmark.pedantic(run, rounds=1, iterations=1)
