"""Ablation: broker processing queueing under bursty load.

With queueing enabled each broker serialises its handler, so a burst of
publications through a shared path inflates tail latency — the
behaviour a loaded deployment shows and the default overlapping model
hides.
"""

import pytest

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.workloads.document_generator import generate_documents


def run(queueing):
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.0005),
        processing_scale=1.0,
        queueing=queueing,
    )
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    subscriber.subscribe("/ProteinDatabase")
    overlay.run()
    # A burst: many documents issued at the same instant.
    for doc in generate_documents(psd_dtd(), 12, seed=29, target_bytes=1500):
        publisher.publish_document(doc)
    overlay.run()
    return overlay.stats


@pytest.mark.paper
def test_queueing_inflates_tail_latency(benchmark, report_sink):
    stats_plain = run(queueing=False)
    stats_queued = benchmark.pedantic(
        lambda: run(queueing=True), rounds=1, iterations=1
    )
    p95_plain = stats_plain.delay_percentile(0.95)
    p95_queued = stats_queued.delay_percentile(0.95)
    report_sink.append(
        "Ablation — queueing under a 12-document burst\n"
        "p95 delay: overlapping %.2f ms, serialised %.2f ms"
        % (p95_plain * 1e3, p95_queued * 1e3)
    )
    # Serialised processing can only be slower...
    assert p95_queued >= p95_plain * 0.99
    # ...and deliveries stay identical.
    assert stats_queued.delivered_documents().keys() == (
        stats_plain.delivered_documents().keys()
    )
