"""Microbenchmarks of individual components (throughput sanity).

Not tied to a paper table — these catch performance regressions in the
primitives everything else composes: XPE parsing, advertisement NFA
compilation, covering checks, wire encode/decode, document
decomposition.
"""

import pytest

from repro.adverts.generator import generate_advertisements
from repro.adverts.nfa import AdvertNFA
from repro.broker.messages import PublishMsg
from repro.covering.algorithms import covers
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.network.wire import decode, encode
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents
from repro.xpath.parser import parse_xpath


@pytest.fixture(scope="module")
def nitf_adverts():
    return generate_advertisements(nitf_dtd())


def test_parse_xpath_throughput(benchmark):
    texts = [
        "/nitf/body/body-content/block/p",
        "//block/*/hl2",
        "body//p[@lang='de']",
        "/a[@p!='1']/b/c[text()='v']",
    ] * 50

    def parse_all():
        return [parse_xpath(t) for t in texts]

    exprs = benchmark(parse_all)
    assert len(exprs) == len(texts)


def test_advert_nfa_compile(benchmark, nitf_adverts):
    recursive = [a for a in nitf_adverts if a.is_recursive][:200]

    def compile_all():
        total = 0
        for advert in recursive:
            if hasattr(advert, "_nfa_cache"):
                object.__delattr__(advert, "_nfa_cache")
            total += AdvertNFA.compile(advert).state_count()
        return total

    states = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    assert states > 0


def test_covering_check_throughput(benchmark):
    exprs = list(psd_queries(150, seed=17).exprs)

    def all_pairs():
        hits = 0
        for s1 in exprs:
            for s2 in exprs:
                if covers(s1, s2):
                    hits += 1
        return hits

    hits = benchmark.pedantic(all_pairs, rounds=1, iterations=1)
    assert hits >= len(exprs)  # reflexivity


def test_wire_round_trip_throughput(benchmark):
    docs = generate_documents(psd_dtd(), 5, seed=18, target_bytes=2048)
    messages = [
        PublishMsg(publication=p, publisher_id="pub")
        for doc in docs
        for p in doc.publications()
    ]

    def round_trip_all():
        return [decode(encode(m)) for m in messages]

    decoded = benchmark(round_trip_all)
    assert len(decoded) == len(messages)


def test_document_decomposition(benchmark):
    docs = generate_documents(nitf_dtd(), 10, seed=19, target_bytes=4096)
    texts = [doc.serialize() for doc in docs]

    def parse_and_decompose():
        from repro.xmldoc import XMLDocument

        total = 0
        for index, text in enumerate(texts):
            doc = XMLDocument.parse(text, doc_id="bench-%d" % index)
            total += len(doc.publications())
        return total

    paths = benchmark(parse_and_decompose)
    assert paths > 0
