"""Scalability sweep benchmark: the paper's closing claim that the
optimisations pay more in larger networks."""

import pytest

from repro.experiments.scalability import run_scalability_sweep


@pytest.mark.paper
def test_benefit_grows_with_overlay_size(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_scalability_sweep(), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    factors = result.column("benefit_factor")
    # Strictly growing benefit with network size (the paper's claim).
    assert all(b > a for a, b in zip(factors, factors[1:])), factors
    assert factors[-1] > 2.0
