"""Ablation: the five publication-matching engines.

The paper's §5 references a comparison with YFilter: the covering tree
wins on high-overlap, wildcard-heavy workloads (covered subtrees are
pruned), YFilter on low-match workloads (shared prefixes are cheap to
reject).  This ablation times the flat scan, the covering tree, the
YFilter NFA, the predicate index and the lazy-DFA shared automaton on
one workload, checks the engines agree, and reports the shared
engines' ``automaton_size()`` (the mass-subscription scaling story is
``test_mass_matching.py``; this is the paper-sized workload).
"""

import pytest

from repro.matching.engine import LinearMatcher, TreeMatcher
from repro.matching.predicate_index import PredicateIndexMatcher
from repro.matching.shared_automaton import SharedAutomatonMatcher
from repro.matching.yfilter import YFilterMatcher
from repro.dtd.samples import nitf_dtd
from repro.workloads.document_generator import generate_documents


@pytest.fixture(scope="module")
def workload(paper_sets):
    dataset_a, _ = paper_sets
    docs = generate_documents(nitf_dtd(), 10, seed=21, target_bytes=2048)
    paths = [p.path for doc in docs for p in doc.publications()]
    return list(dataset_a.exprs), paths


def _build(engine_cls, exprs):
    engine = engine_cls()
    for index, expr in enumerate(exprs):
        engine.add(expr, index)
    return engine


def _route_all(engine, paths):
    return [engine.match(path) for path in paths]


@pytest.mark.paper
def test_linear_scan(benchmark, workload):
    exprs, paths = workload
    engine = _build(LinearMatcher, exprs)
    benchmark.pedantic(lambda: _route_all(engine, paths), rounds=1, iterations=1)


@pytest.mark.paper
def test_covering_tree(benchmark, workload):
    exprs, paths = workload
    engine = _build(TreeMatcher, exprs)
    benchmark.pedantic(lambda: _route_all(engine, paths), rounds=1, iterations=1)


@pytest.mark.paper
def test_yfilter_nfa(benchmark, workload):
    exprs, paths = workload
    engine = _build(YFilterMatcher, exprs)
    benchmark.pedantic(lambda: _route_all(engine, paths), rounds=1, iterations=1)
    print(
        "\nYFilter NFA: %d exprs -> %d automaton states"
        % (len(exprs), engine.automaton_size())
    )


@pytest.mark.paper
def test_shared_automaton(benchmark, workload):
    exprs, paths = workload
    engine = _build(SharedAutomatonMatcher, exprs)
    engine.match(paths[0])  # warm the DFA start state
    benchmark.pedantic(lambda: _route_all(engine, paths), rounds=1, iterations=1)
    print(
        "\nshared automaton: %d exprs -> %d NFA states, %d cached DFA "
        "states, %d flushes"
        % (
            len(exprs),
            engine.automaton_size(),
            engine.dfa_size(),
            engine.dfa_flushes,
        )
    )


@pytest.mark.paper
def test_predicate_index(benchmark, workload):
    exprs, paths = workload
    engine = _build(PredicateIndexMatcher, exprs)
    benchmark.pedantic(lambda: _route_all(engine, paths), rounds=1, iterations=1)


@pytest.mark.paper
def test_engines_agree(benchmark, workload):
    exprs, paths = workload
    engines = [
        _build(cls, exprs)
        for cls in (
            LinearMatcher,
            TreeMatcher,
            YFilterMatcher,
            PredicateIndexMatcher,
            SharedAutomatonMatcher,
        )
    ]

    def check():
        for path in paths[:40]:
            results = [engine.match(path) for engine in engines]
            assert all(result == results[0] for result in results), path
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
