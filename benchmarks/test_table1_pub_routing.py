"""Table 1 benchmark: publication routing time per message."""

import pytest

from repro.experiments.table1 import run_table1


@pytest.mark.paper
def test_table1_publication_routing(
    benchmark, paper_sets, nitf_universe, report_sink
):
    dataset_a, dataset_b = paper_sets
    scale = len(dataset_a) / 100_000.0
    result = benchmark.pedantic(
        lambda: run_table1(
            scale=scale,
            documents=10,
            dataset_a=dataset_a,
            dataset_b=dataset_b,
            universe=nitf_universe,
        ),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.format())

    rows = {row["method"]: row for row in result.rows()}
    # Paper shape: covering beats no-covering on both sets; the win is
    # far larger on Set A (90% covered); merging improves further.
    assert rows["Covering"]["set_a_ms"] < rows["No Covering"]["set_a_ms"]
    assert rows["Covering"]["set_b_ms"] < rows["No Covering"]["set_b_ms"]
    gain_a = rows["No Covering"]["set_a_ms"] / rows["Covering"]["set_a_ms"]
    gain_b = rows["No Covering"]["set_b_ms"] / rows["Covering"]["set_b_ms"]
    assert gain_a > gain_b
    # Merged tables must stay in covering's ballpark — with the compiled
    # fast path these cells are single-digit-to-tens of microseconds, so
    # one scheduler hiccup moves the ratio; the large no-covering gap
    # above is the load-bearing assertion.
    assert (
        rows["Imperfect Merging"]["set_a_ms"]
        <= rows["Covering"]["set_a_ms"] * 2.5
    )
