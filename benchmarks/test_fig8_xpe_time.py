"""Figure 8 benchmark: per-XPE processing time with/without covering."""

import pytest

from repro.experiments.fig8 import run_fig8

SCALE = 0.12  # 600 of the paper's 5,000 XPEs per DTD


@pytest.mark.paper
def test_fig8_xpe_processing_time(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig8(scale=SCALE), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    last = result.rows()[-1]
    # Paper shape: covering clearly cheaper for NITF (the advertisement
    # set is ~35-43x larger, so skipping advertisement matching pays);
    # for PSD the paper reports a small win — with our stand-in's tiny
    # advertisement set the two sides land near parity, so only a
    # no-large-regression bound is asserted (see EXPERIMENTS.md).
    assert last["nitf_with_cov_ms"] < 0.5 * last["nitf_without_cov_ms"]
    assert last["psd_with_cov_ms"] < 2.5 * last["psd_without_cov_ms"]
    nitf_gain = last["nitf_without_cov_ms"] - last["nitf_with_cov_ms"]
    psd_gain = last["psd_without_cov_ms"] - last["psd_with_cov_ms"]
    assert nitf_gain > psd_gain
