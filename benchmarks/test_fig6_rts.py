"""Figure 6 benchmark: routing-table size vs. number of XPEs.

Times the covering-tree insertion workload and regenerates the figure's
series (no-covering vs. covering on Sets A and B).
"""

import pytest

from repro.covering.subscription_tree import SubscriptionTree
from repro.experiments.fig6 import run_fig6


@pytest.mark.paper
def test_fig6_routing_table_size(benchmark, paper_sets, report_sink):
    dataset_a, dataset_b = paper_sets
    scale = len(dataset_a) / 100_000.0

    result = benchmark.pedantic(
        lambda: run_fig6(
            scale=scale, dataset_a=dataset_a, dataset_b=dataset_b
        ),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.format())

    sizes_a = result.column("covering_set_a")
    sizes_b = result.column("covering_set_b")
    totals = result.column("no_covering")
    # Paper shape: covering shrinks the table dramatically; Set A (90%
    # covering) ends far smaller than Set B (50%).
    assert sizes_a[-1] < sizes_b[-1] < totals[-1]
    assert sizes_a[-1] <= 0.2 * totals[-1]
    assert 0.4 * totals[-1] <= sizes_b[-1] <= 0.6 * totals[-1]


@pytest.mark.paper
def test_fig6_insert_throughput(benchmark, paper_sets):
    """Microbenchmark: covering-tree insertion cost on Set B."""
    _, dataset_b = paper_sets
    exprs = dataset_b.exprs[:500]

    def insert_all():
        tree = SubscriptionTree()
        for index, expr in enumerate(exprs):
            tree.insert(expr, index)
        return tree

    tree = benchmark(insert_all)
    assert len(tree) == len(exprs)
