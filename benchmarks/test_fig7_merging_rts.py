"""Figure 7 benchmark: routing-table size under covering + merging."""

import pytest

from repro.covering.subscription_tree import SubscriptionTree
from repro.experiments.fig7 import run_fig7
from repro.merging.engine import MergingEngine


@pytest.mark.paper
def test_fig7_merging_rts(benchmark, paper_sets, nitf_universe, report_sink):
    _, dataset_b = paper_sets
    scale = len(dataset_b) / 100_000.0
    result = benchmark.pedantic(
        lambda: run_fig7(
            scale=scale, dataset=dataset_b, universe=nitf_universe
        ),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.format())

    covering = result.column("covering")[-1]
    perfect = result.column("perfect_merging")[-1]
    imperfect = result.column("imperfect_merging")[-1]
    # Paper shape: perfect merging compacts the covering table (~87%),
    # imperfect merging compacts it further (~67%).
    assert perfect <= covering
    assert imperfect <= perfect
    assert imperfect < covering


@pytest.mark.paper
def test_fig7_merge_sweep_cost(benchmark, paper_sets, nitf_universe):
    """Microbenchmark: one merging sweep over a populated tree."""
    _, dataset_b = paper_sets
    tree = SubscriptionTree()
    for index, expr in enumerate(dataset_b.exprs[:800]):
        tree.insert(expr, index)
    engine = MergingEngine(universe=nitf_universe, max_degree=0.1)

    benchmark.pedantic(
        lambda: engine.merge_tree(tree), rounds=1, iterations=1
    )
