#!/usr/bin/env python
"""Render a BENCH_obs.json artifact as a GitHub-flavoured markdown table.

Usage::

    python benchmarks/bench_summary.py BENCH_obs.json
    python benchmarks/bench_summary.py BENCH_obs.json --prefix matching.mass.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` so every benchmark
lane's p50/p95 timings are readable from the job page without
downloading the artifact.  Values are raw seconds (per sample) plus the
calibrated p50 (seconds divided by the run's calibration figure — the
machine-independent number the regression gate compares).
"""

from __future__ import annotations

import argparse
import json
import sys


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.3f s" % seconds
    if seconds >= 1e-3:
        return "%.3f ms" % (seconds * 1e3)
    return "%.1f µs" % (seconds * 1e6)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="BENCH_obs.json from a benchmark run")
    parser.add_argument(
        "--prefix",
        action="append",
        default=None,
        metavar="PREFIX",
        help="only histograms under this prefix (repeatable; default all)",
    )
    parser.add_argument(
        "--title", default="Benchmark timings", help="markdown heading"
    )
    args = parser.parse_args(argv)

    with open(args.artifact) as handle:
        payload = json.load(handle)
    calibration = payload.get("meta", {}).get("calibration_seconds") or 0.0
    histograms = payload.get("metrics", {}).get("histograms", {})

    rows = []
    for name in sorted(histograms):
        if args.prefix and not any(name.startswith(p) for p in args.prefix):
            continue
        stats = histograms[name]
        calibrated = (
            "%.4f" % (stats["p50"] / calibration) if calibration else "—"
        )
        rows.append(
            "| `%s` | %d | %s | %s | %s |"
            % (
                name,
                stats["count"],
                _fmt(stats["p50"]),
                _fmt(stats["p95"]),
                calibrated,
            )
        )

    print("## %s" % args.title)
    if not rows:
        print()
        print("_no matching histograms in %s_" % args.artifact)
        return 0
    print()
    print(
        "calibration: %.4fs (python %s)"
        % (calibration, payload.get("meta", {}).get("python", "?"))
    )
    print()
    print("| metric | samples | p50 | p95 | calibrated p50 |")
    print("|---|---:|---:|---:|---:|")
    for row in rows:
        print(row)
    gauges = payload.get("metrics", {}).get("gauges", {})
    sized = {
        name: value
        for name, value in sorted(gauges.items())
        if args.prefix and any(name.startswith(p) for p in args.prefix)
    }
    if sized:
        print()
        for name, value in sized.items():
            print("- `%s`: %d" % (name, value))
    return 0


if __name__ == "__main__":
    sys.exit(main())
