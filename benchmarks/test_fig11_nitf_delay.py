"""Figure 11 benchmark: notification delay vs. hops (NITF documents)."""

import pytest

from repro.experiments.fig10_11 import run_fig11


@pytest.mark.paper
def test_fig11_nitf_notification_delay(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig11(scale=0.6), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    rows = result.rows()
    assert len(rows) >= 4
    for key in ("2K_cov_ms", "2K_nocov_ms", "40K_cov_ms"):
        series = [row[key] for row in rows if row.get(key) is not None]
        assert series[-1] > series[0]
    # Larger documents take longer per hop (transmission dominates).
    last = rows[-1]
    assert last["40K_cov_ms"] > last["2K_cov_ms"]
