"""Shared benchmark configuration.

Every module reproduces one table/figure of the paper; the experiment
result is printed after the timing run, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
rows/series.  Scales are reduced relative to the paper (Python vs. the
authors' C++/cluster); EXPERIMENTS.md records the correspondence.
"""

import json
import os
import platform
import sys
import time

import pytest

from repro import obs
from repro.dtd.samples import nitf_dtd
from repro.merging.engine import PathUniverse
from repro.workloads.datasets import set_a, set_b

#: Queries per Set A/B dataset — 1.2% of the paper's 100,000.  Set B
#: needs half its queries mutually incomparable, and our NITF stand-in's
#: depth-10 path space supports ~1,300 such queries at most, so this is
#: close to the largest faithful Set B this DTD can carry.
PAPER_SET_SIZE = 1200


#: Path of the machine-readable observability artifact the benchmark
#: session writes (and CI uploads): repo root / BENCH_obs.json.
BENCH_OBS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json",
)


def _calibrate(iterations: int = 200000) -> float:
    """Seconds for a fixed pure-Python workload on this machine.

    Stored alongside the metrics so the regression gate can compare
    runs across machines of different speeds: hot-path timings are
    divided by this figure before the baseline ratio test.
    """
    start = time.perf_counter()
    total = 0
    table = {}
    for i in range(iterations):
        table[i & 1023] = i
        total += table.get((i * 7) & 1023, 0)
    if total < 0:  # keep the loop observable
        raise AssertionError("unreachable")
    return time.perf_counter() - start


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: marks benchmarks that regenerate a paper table/figure"
    )
    config.addinivalue_line(
        "markers",
        "soak: long-running scale benchmarks (1M subscriptions) — "
        'excluded from the PR lanes with -m "not soak"',
    )
    # The benchmark session runs with hot-path metrics ON so the
    # BENCH_obs.json artifact records every instrumented component's
    # timing distribution (the perf trajectory CI tracks).
    obs.enable_metrics(reset=True)


def pytest_sessionfinish(session, exitstatus):
    registry = obs.get_registry()
    if not registry.metric_names():
        return  # collection-only / fully-skipped session
    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": sys.argv[1:],
            "paper_set_size": PAPER_SET_SIZE,
            "calibration_seconds": _calibrate(),
            "unix_time": time.time(),
        },
        "metrics": registry.snapshot(),
    }
    with open(BENCH_OBS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line("observability snapshot: %s" % BENCH_OBS_PATH)


@pytest.fixture(scope="session")
def paper_sets():
    """Sets A and B at the shared benchmark size.

    Construction takes minutes (Set B assembles an antichain close to
    the DTD's ceiling), so the built sets are cached on disk as XPE
    strings, keyed by size and seed; delete ``benchmarks/.dataset_cache``
    to force a rebuild.
    """
    import json
    import os

    from repro.workloads.datasets import Dataset
    from repro.xpath.parser import parse_xpath

    cache_dir = os.path.join(os.path.dirname(__file__), ".dataset_cache")
    os.makedirs(cache_dir, exist_ok=True)
    cache_file = os.path.join(
        cache_dir, "paper_sets_%d_v1.json" % PAPER_SET_SIZE
    )
    if os.path.exists(cache_file):
        with open(cache_file) as handle:
            payload = json.load(handle)
        return tuple(
            Dataset(
                name=item["name"],
                exprs=tuple(parse_xpath(t) for t in item["exprs"]),
                target_covering_rate=item["rate"],
            )
            for item in payload
        )

    datasets = (set_a(PAPER_SET_SIZE), set_b(PAPER_SET_SIZE))
    with open(cache_file, "w") as handle:
        json.dump(
            [
                {
                    "name": dataset.name,
                    "exprs": [str(e) for e in dataset.exprs],
                    "rate": dataset.target_covering_rate,
                }
                for dataset in datasets
            ],
            handle,
        )
    return datasets


@pytest.fixture(scope="session")
def nitf_universe():
    return PathUniverse.from_dtd(nitf_dtd(), max_depth=8)


@pytest.fixture(scope="session")
def report_sink():
    """Collects formatted experiment tables and prints them at the end
    of the session so they survive pytest-benchmark's output."""
    tables = []
    yield tables
    if tables:
        print("\n")
        print("=" * 72)
        print("REPRODUCED TABLES AND FIGURES")
        print("=" * 72)
        for table in tables:
            print()
            print(table)
