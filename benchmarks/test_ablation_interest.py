"""Ablation benchmark: covering benefit vs. subscriber interest
similarity (quantifying the paper's §5 claim)."""

import pytest

from repro.experiments.ablation_interest import run_interest_ablation


@pytest.mark.paper
def test_covering_benefit_grows_with_interest_similarity(
    benchmark, report_sink
):
    result = benchmark.pedantic(
        lambda: run_interest_ablation(), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    rows = result.rows()
    similarities = [row["similarity"] for row in rows]
    savings = [row["saved_pct"] for row in rows]
    # Similarity must respond to the skew knob...
    assert similarities[-1] > similarities[0] * 2
    # ...and the paper's claim: aligned interests save clearly more
    # than dissimilar ones (compare the extremes' neighbourhoods).
    assert max(savings[-2:]) > savings[0] * 1.5
    assert all(s > 0 for s in savings)
