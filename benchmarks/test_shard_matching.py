"""Sharded matching under churn: the CI ``shard-matching`` lane.

The single shared automaton pays for subscriber churn with its whole
table: one SUB/UNSUB flushes the entire lazy-DFA fragment (and, at the
broker layer, stales the broker-global match cache), so the next
publication wave re-runs subset construction over all 100k resident
expressions.  :class:`~repro.matching.sharded.ShardedMatcher` bounds
that blast radius to one root shard.  Three lanes pin the win:

* **engine churn lane** — 100k Zipf subscriptions in both engines;
  each round applies one anchored SUB + one anchored UNSUB and then
  probes a fixed publication set the way a broker would (plain match
  for the shared engine, whose broker-global memo the churn just
  staled; ``match_cached`` for the sharded engine, whose unchurned
  shards stay warm).  Gates identical results and a
  :data:`SPEEDUP_FLOOR` end-to-end speedup.
* **asyncio backend lane** — the acceptance criterion: one-broker
  :class:`~repro.runtime.asyncio_backend.AsyncioRuntime` per engine,
  100k preloaded subscriptions, churn via real SubscribeMsg traffic,
  publication waves timed through ``submit``/``drain`` (the sharded
  run fans shard probes on the runtime's bounded worker pool).
* **skewed-Zipf rebalance lane** — three hot roots engineered into one
  shard; the skew trigger splits it, and churn-round p95 latency with
  rebalancing is gated against the frozen (auto_rebalance=False)
  layout.

Per-round timings land in the ``matching.shard.*`` histograms of
``BENCH_obs.json``, gated bidirectionally by ``check_obs_regression.py
--only matching.shard.``.  The 1M engine variant is marked ``soak``.

Note on parallelism: this container is single-core, so the gated
speedups come from invalidation locality (recompute 1/N of the work),
not from the worker pool — docs/runtime.md spells out the distinction.
"""

import time
import zlib

import pytest

from repro import obs
from repro.broker import RoutingConfig
from repro.matching.shared_automaton import SharedAutomatonMatcher
from repro.matching.sharded import ShardedMatcher
from repro.runtime.asyncio_backend import AsyncioRuntime
from repro.workloads.mass import (
    MassWorkloadParams,
    generate_mass_subscriptions,
    generate_probe_paths,
)
from repro.xpath.parser import parse_xpath

SUBSCRIPTIONS = 100_000
SOAK_SUBSCRIPTIONS = 1_000_000
SHARDS = 4

#: Churn rounds — one histogram sample each, above the regression
#: gate's MIN_SAMPLES (30).
ROUNDS = 40

#: Distinct publication paths probed per churn round.
PROBES_PER_ROUND = 15


#: The ISSUE's acceptance floor: sharded at least this many times
#: faster than the single shared automaton under churn-interleaved
#: matching.  Measured runs land far above it (invalidation locality
#: scales with the shard count); the floor keeps the gate robust.
SPEEDUP_FLOOR = 2.5


def _distinct_probe_paths(count, params, seed):
    paths = []
    seen = set()
    batch_seed = seed
    while len(paths) < count:
        for path in generate_probe_paths(count, params, seed=batch_seed):
            if path not in seen:
                seen.add(path)
                paths.append(path)
                if len(paths) == count:
                    break
        batch_seed += 1
    return paths


def _churn_expr(round_index):
    """An anchored expression under a rotating vocabulary root — lands
    in a root shard (relative churn would hit the floating shard and
    dilute the locality the lane measures)."""
    return parse_xpath(
        "/e%02d/churn/r%d" % (round_index % 40, round_index)
    )


def _build_engines(count, seed=7):
    params = MassWorkloadParams()
    pairs = generate_mass_subscriptions(count, params, seed=seed)
    shared = SharedAutomatonMatcher()
    sharded = ShardedMatcher(shard_count=SHARDS)
    for expr, key in pairs:
        shared.add(expr, key)
        sharded.add(expr, key)
    paths = _distinct_probe_paths(PROBES_PER_ROUND, params, seed=seed + 1)
    return shared, sharded, paths


def _run_churn_pair(count):
    shared, sharded, paths = _build_engines(count)
    assert len(shared) == len(sharded)
    registry = obs.get_registry()

    # Warm both engines: the steady state being measured is "tables
    # loaded, DFAs built, caches populated", then churn arrives.
    for path in paths:
        shared.match(path)
        sharded.match_cached(path, None, lambda: None)

    shared_seconds = 0.0
    sharded_seconds = 0.0
    for round_index in range(ROUNDS):
        churn = _churn_expr(round_index)

        start = time.perf_counter()
        with registry.timer("matching.shard.bulk.shared"):
            shared.add(churn, "churn")
            shared.remove(churn, "churn")
            shared_results = [shared.match(path) for path in paths]
        shared_seconds += time.perf_counter() - start

        start = time.perf_counter()
        with registry.timer("matching.shard.bulk.sharded"):
            sharded.add(churn, "churn")
            sharded.remove(churn, "churn")
            sharded_results = [
                sharded.match_cached(path, None, lambda: None)[0]
                for path in paths
            ]
        sharded_seconds += time.perf_counter() - start

        for path, expected, got in zip(paths, shared_results,
                                       sharded_results):
            assert got == frozenset(expected), (
                "engines disagree on %r after churn round %d"
                % (path, round_index)
            )

    sharded.check_invariants()
    stats = sharded.stats()
    registry.set_gauge("matching.shard.subscriptions", count)
    registry.set_gauge("matching.shard.count", stats["shard_count"])
    registry.set_gauge("matching.shard.max_shard_exprs",
                       stats["max_shard_exprs"])
    registry.set_gauge("matching.shard.floating_exprs",
                       stats["floating_exprs"])

    speedup = shared_seconds / sharded_seconds if sharded_seconds else 0.0
    print(
        "\n%d subscriptions, %d churn rounds x %d probes: shared %.3fs, "
        "sharded %.3fs (%.1fx), %d shards, max shard %d exprs, "
        "floating %d exprs"
        % (count, ROUNDS, len(paths), shared_seconds, sharded_seconds,
           speedup, stats["shard_count"], stats["max_shard_exprs"],
           stats["floating_exprs"])
    )
    assert speedup >= SPEEDUP_FLOOR, (
        "sharded engine only %.1fx faster than the shared automaton "
        "under churn at %d subscriptions (floor %.1fx)"
        % (speedup, count, SPEEDUP_FLOOR)
    )


@pytest.mark.paper
def test_shard_churn_matching_100k():
    _run_churn_pair(SUBSCRIPTIONS)


@pytest.mark.paper
@pytest.mark.soak
def test_shard_churn_matching_1m():
    _run_churn_pair(SOAK_SUBSCRIPTIONS)


# -- the asyncio backend lane (acceptance criterion) -----------------------


def _run_asyncio_engine(engine, pairs, paths, churn_metric):
    """One-broker AsyncioRuntime; returns ``(delivered, wall_seconds,
    publish_seconds)`` — the latter is the broker's own
    ``broker.handle.publish`` histogram delta over the churn rounds,
    i.e. matching plus routing decision, excluding the event-loop
    plumbing that is identical across engines."""
    config = RoutingConfig(
        advertisements=False,
        covering=False,
        matching_engine=engine,
        shard_count=SHARDS,
    )
    registry = obs.get_registry()
    runtime = AsyncioRuntime(config=config)
    broker = runtime.add_broker("b1")
    runtime.start()
    try:
        subscriber = runtime.attach_subscriber("c1", "b1")
        # Churn arrives through its own client: the per-delivery edge
        # recheck scans a client's own subscription set, and a growing
        # churn set under the delivery client would add an identical
        # linear cost to both engines, diluting the gated ratio.
        churner = runtime.attach_subscriber("churn", "b1")
        publisher = runtime.attach_publisher("pub", "b1")
        # A few live edge subscriptions so the lane delivers real
        # traffic end-to-end (the edge recheck scans these per
        # delivery; keeping the set small keeps the recheck out of
        # the measurement).
        for text in ("//e00", "//e05", "//e11"):
            subscriber.subscribe(text)
        runtime.drain()
        # Bulk-load the table directly (100k SubscribeMsgs through the
        # actor loop would measure message plumbing, not matching) and
        # let the mirror rebuild from it, as after a snapshot restore.
        for expr, _key in pairs:
            broker.flat.add(expr, "c1")
        broker._mark_shared_dirty()
        publisher.publish_paths(paths[:1], doc_id="warmup")
        runtime.drain()

        publish_hist = registry.histogram("broker.handle.publish")
        publish_before = publish_hist.total
        total = 0.0
        for round_index in range(ROUNDS):
            churner.subscribe(_churn_expr(round_index))
            runtime.drain()
            start = time.perf_counter()
            with registry.timer(churn_metric):
                publisher.publish_paths(paths, doc_id="r%d" % round_index)
                runtime.drain()
            total += time.perf_counter() - start
        delivered = sorted(
            (msg.publication.doc_id, msg.publication.path_id)
            for msg in subscriber.received
        )
        return delivered, total, publish_hist.total - publish_before
    finally:
        runtime.close()


@pytest.mark.paper
def test_shard_matching_asyncio_backend_100k():
    """The acceptance gate: ``--engine sharded`` beats ``--engine
    shared`` by :data:`SPEEDUP_FLOOR` on the asyncio backend at 100k
    resident subscriptions, delivering the identical publication set."""
    params = MassWorkloadParams()
    pairs = generate_mass_subscriptions(SUBSCRIPTIONS, params, seed=7)
    paths = _distinct_probe_paths(PROBES_PER_ROUND, params, seed=8)

    shared_delivered, shared_wall, shared_publish = _run_asyncio_engine(
        "shared", pairs, paths, "matching.shard.asyncio.shared"
    )
    sharded_delivered, sharded_wall, sharded_publish = _run_asyncio_engine(
        "sharded", pairs, paths, "matching.shard.asyncio.sharded"
    )

    assert shared_delivered, "no deliveries — the lane is not end-to-end"
    assert sharded_delivered == shared_delivered

    # Gate on the broker's publish-handling time (matching + routing
    # decision): the wall-clock ratio is diluted by per-message event
    # loop plumbing that is identical across engines and would make
    # the gate flaky near the floor.
    speedup = shared_publish / sharded_publish if sharded_publish else 0.0
    wall_speedup = shared_wall / sharded_wall if sharded_wall else 0.0
    print(
        "\nasyncio backend, %d subscriptions, %d churn rounds: publish "
        "handling shared %.3fs, sharded %.3fs (%.1fx); wall shared "
        "%.3fs, sharded %.3fs (%.1fx); %d deliveries"
        % (SUBSCRIPTIONS, ROUNDS, shared_publish, sharded_publish,
           speedup, shared_wall, sharded_wall, wall_speedup,
           len(sharded_delivered))
    )
    assert speedup >= SPEEDUP_FLOOR, (
        "sharded engine only %.1fx faster than shared on the asyncio "
        "backend (floor %.1fx)" % (speedup, SPEEDUP_FLOOR)
    )


# -- the skewed-Zipf rebalance lane ----------------------------------------


def _co_sharded_roots(count, shard_count=SHARDS):
    """*count* distinct synthetic roots that all hash into one shard —
    the engineered worst case the rebalancer exists for."""
    roots = []
    target = None
    index = 0
    while len(roots) < count:
        name = "hot%d" % index
        index += 1
        home = zlib.crc32(name.encode("utf-8")) % shard_count
        if target is None:
            target = home
        if home == target:
            roots.append(name)
    return roots


def _skewed_matcher(auto):
    matcher = ShardedMatcher(
        shard_count=SHARDS,
        rebalance_factor=1.5,
        min_split_size=256,
        auto_rebalance=False,
    )
    h0, h1, h2 = _co_sharded_roots(3)
    loads = ((h0, 9000), (h1, 6000), (h2, 5000))
    for root, load in loads:
        for i in range(load):
            matcher.add(parse_xpath("/%s/c%d/leaf" % (root, i)), (root, i))
    if auto:
        assert matcher.maybe_rebalance(), "skew trigger did not fire"
    return matcher, (h0, h1, h2)


def _percentile(samples, q):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


@pytest.mark.paper
def test_shard_rebalancing_bounds_churn_latency():
    """Three Zipf-hot roots engineered into one shard: the skew trigger
    splits it, and hot-root churn rounds stay fast because the split
    moved two of the roots out of the churned shard's blast radius."""
    static, _ = _skewed_matcher(auto=False)
    balanced, (h0, h1, h2) = _skewed_matcher(auto=True)
    assert balanced.rebalances == 1
    assert balanced.shard_count == SHARDS + 1
    balanced.check_invariants()
    moved = set(balanced.rebalance_log[0]["roots"])
    assert moved and h0 not in moved  # heaviest root stays put

    probe_paths = [
        (root, "c%d" % i, "leaf")
        for root in (h0, h1, h2)
        for i in (0, 1, 2, 3)
    ]
    registry = obs.get_registry()
    timings = {}
    for name, matcher in (("static", static), ("balanced", balanced)):
        metric = "matching.shard.rebalance.%s" % name
        # Warm caches, then churn under the heaviest root each round.
        for path in probe_paths:
            matcher.match_cached(path, None, lambda: None)
        rounds = []
        for round_index in range(ROUNDS):
            churn = parse_xpath("/%s/churn/r%d" % (h0, round_index))
            start = time.perf_counter()
            with registry.timer(metric):
                matcher.add(churn, "churn")
                matcher.remove(churn, "churn")
                results = [
                    matcher.match_cached(path, None, lambda: None)[0]
                    for path in probe_paths
                ]
            rounds.append(time.perf_counter() - start)
            assert all(results), "hot-root probes must match"
        timings[name] = rounds

    for path in probe_paths:
        assert static.match(path) == balanced.match(path), path

    static_p95 = _percentile(timings["static"], 0.95)
    balanced_p95 = _percentile(timings["balanced"], 0.95)
    registry.set_gauge("matching.shard.rebalance.migrated",
                       balanced.migrated_exprs)
    print(
        "\nrebalance lane: static p95 %.6fs, balanced p95 %.6fs "
        "(%.1fx), %d exprs migrated in split %s -> %s"
        % (static_p95, balanced_p95,
           static_p95 / balanced_p95 if balanced_p95 else 0.0,
           balanced.migrated_exprs,
           balanced.rebalance_log[0]["from"],
           balanced.rebalance_log[0]["to"])
    )
    assert balanced_p95 <= static_p95 * 0.8, (
        "rebalancing did not bound churn-round p95: balanced %.6fs vs "
        "static %.6fs" % (balanced_p95, static_p95)
    )
