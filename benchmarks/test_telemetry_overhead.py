"""Telemetry sampling overhead: the CI ``telemetry`` lane.

The live telemetry plane (docs/telemetry.md) samples every broker on a
virtual-clock timer: counter deltas from the registry, queue-depth and
routing-table gauges, the delivery-delay p99 window, then one
``HealthMonitor.observe`` pass over the SLO rules.  All of that rides
the simulator's own event loop, so its cost lands inside the measured
workload — this pair pins it.

Two identical quickstart-shaped runs (7 brokers, PSD advertisements,
four leaf subscribers, one publisher), interleaved round-robin so
machine drift hits both sides equally: one with the plane sampling on
a tight virtual interval (dozens of samples per broker per run), one
with telemetry off entirely.  Per-round timings land in
``telemetry.bench.on`` / ``telemetry.bench.off`` (gated bidirectionally
by ``check_obs_regression.py --only telemetry.``); the end-to-end
assertion is the acceptance ceiling: the sampled run at most
:data:`OVERHEAD_CEILING` x the unsampled one.
"""

import time

import pytest

from repro import obs
from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network.latency import ClusterLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents

#: Rounds per side — one histogram sample each, above the regression
#: gate's MIN_SAMPLES (30).
ROUNDS = 32

#: The ISSUE's acceptance ceiling: sampling on at most this many times
#: the cost of the identical workload with telemetry off.  The sampler
#: is a handful of dict reads and float subtractions per broker per
#: tick; measured runs sit well under the ceiling.
OVERHEAD_CEILING = 1.2

#: Virtual-clock sampling interval — tight enough that each run takes
#: dozens of samples per broker, so the pair measures real sampling
#: work, not a single no-op tick.
INTERVAL = 0.0001


def _run_workload(telemetry=False, xpes_per_subscriber=20, documents=4):
    """Quickstart-shaped run: 7 brokers, PSD advertisements, four leaf
    subscribers, one publisher (the test_obs_overhead workload with the
    telemetry plane optionally enabled)."""
    dtd = psd_dtd()
    overlay = Overlay.binary_tree(
        3,
        config=RoutingConfig.full(),
        latency_model=ClusterLatency(seed=7),
    )
    if telemetry:
        overlay.enable_telemetry(interval=INTERVAL)
    subscribers = [
        overlay.attach_subscriber("sub%d" % index, leaf)
        for index, leaf in enumerate(overlay.leaf_brokers())
    ]
    publisher = overlay.attach_publisher("pub0", "b1")
    publisher.advertise_dtd(dtd)
    overlay.run()
    for index, subscriber in enumerate(subscribers):
        for expr in psd_queries(
            xpes_per_subscriber, seed=100 + index
        ).exprs:
            subscriber.subscribe(expr)
    overlay.run()
    for doc in generate_documents(dtd, documents, seed=3, target_bytes=1024):
        publisher.publish_document(doc)
    overlay.run()
    return overlay


@pytest.mark.paper
def test_sampling_overhead_within_ceiling():
    registry = obs.get_registry()
    on_seconds = 0.0
    off_seconds = 0.0
    sampled = None
    for _round in range(ROUNDS):
        start = time.perf_counter()
        with registry.timer("telemetry.bench.off"):
            plain = _run_workload(telemetry=False)
        off_seconds += time.perf_counter() - start

        start = time.perf_counter()
        with registry.timer("telemetry.bench.on"):
            sampled = _run_workload(telemetry=True)
        on_seconds += time.perf_counter() - start

        assert plain.delivered_map() == sampled.delivered_map(), (
            "telemetry sampling changed the delivered document set"
        )

    # The sampled run did real work: every broker's ring has samples
    # and every broker reported healthy (nothing in this workload
    # breaches the stock SLO rules).
    plane = sampled.telemetry
    assert plane.samples_taken > 0
    for broker_id in sampled.brokers:
        assert len(plane.ring(broker_id)) > 0, broker_id
    assert set(plane.health().values()) <= {"healthy"}
    assert not plane.monitor.alerts

    ratio = on_seconds / off_seconds if off_seconds else 0.0
    samples_per_run = plane.samples_taken / max(1, len(sampled.brokers))
    registry.set_gauge("telemetry.bench.overhead_ratio", ratio)
    registry.set_gauge("telemetry.bench.samples_per_run", samples_per_run)
    print(
        "\n%d rounds: telemetry-off %.3fs, telemetry-on %.3fs (%.3fx), "
        "%d samples taken in the final run (~%.0f per broker)"
        % (ROUNDS, off_seconds, on_seconds, ratio,
           plane.samples_taken, samples_per_run)
    )
    assert ratio <= OVERHEAD_CEILING, (
        "telemetry sampling cost %.3fx the unsampled workload "
        "(ceiling %.2fx)" % (ratio, OVERHEAD_CEILING)
    )


@pytest.mark.benchmark(group="telemetry-overhead")
def test_overlay_run_telemetry_enabled(benchmark):
    overlay = benchmark.pedantic(
        lambda: _run_workload(telemetry=True), rounds=3, iterations=1
    )
    assert overlay.telemetry.samples_taken > 0


@pytest.mark.benchmark(group="telemetry-overhead")
def test_overlay_run_telemetry_disabled(benchmark):
    overlay = benchmark.pedantic(_run_workload, rounds=3, iterations=1)
    assert overlay.telemetry is None
    assert overlay.stats.network_traffic > 0
