"""Table 2 benchmark: traffic and delay in the 7-broker overlay."""

import pytest

from repro.experiments.tables23 import run_traffic_experiment


@pytest.mark.paper
def test_table2_seven_broker_network(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_traffic_experiment(
            levels=3, xpes_per_subscriber=100, documents=10
        ),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.format())

    rows = {row["method"]: row for row in result.rows()}
    # Paper shape (Table 2): covering reduces traffic relative to the
    # same strategy without covering; every optimised strategy stays
    # below the flooding baseline's subscription-dominated traffic,
    # and covering cuts the delay.
    assert (
        rows["no-Adv-with-Cov"]["network_traffic"]
        < rows["no-Adv-no-Cov"]["network_traffic"]
    )
    assert (
        rows["with-Adv-with-Cov"]["network_traffic"]
        < rows["with-Adv-no-Cov"]["network_traffic"]
    )
    assert (
        rows["with-Adv-with-Cov"]["delay_ms"]
        < rows["with-Adv-no-Cov"]["delay_ms"]
    )
