"""Table 3 benchmark: traffic and delay in the 127-broker overlay."""

import pytest

from repro.experiments.tables23 import run_traffic_experiment


@pytest.mark.paper
def test_table3_127_broker_network(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_traffic_experiment(
            levels=7, xpes_per_subscriber=20, documents=5
        ),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.format())

    rows = {row["method"]: row for row in result.rows()}
    assert (
        rows["no-Adv-with-Cov"]["network_traffic"]
        < rows["no-Adv-no-Cov"]["network_traffic"]
    )
    assert (
        rows["with-Adv-with-Cov"]["delay_ms"]
        < rows["with-Adv-no-Cov"]["delay_ms"]
    )
    # Paper: "we achieve more benefit in a larger broker network" — the
    # absolute traffic saved by covering grows with the overlay.
    saved = (
        rows["no-Adv-no-Cov"]["network_traffic"]
        - rows["no-Adv-with-Cov"]["network_traffic"]
    )
    assert saved > 0
