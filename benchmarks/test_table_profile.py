"""Per-hop routing-table compaction (the paper's Fig. 10/11 mechanism:
"routing table size is reduced to 6% for PSD XPEs")."""

import pytest

from repro.experiments.table_profile import run_table_profile


@pytest.mark.paper
def test_covering_compacts_tables_along_the_path(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_table_profile(), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    rows = result.rows()
    # The publisher-side broker sees the heaviest compaction — the
    # paper cites ~6% for PSD; accept a generous band around it.
    first = rows[0]["reduced_to_pct"]
    assert first < 15.0, first
    # Compaction weakens toward the subscriber edge, whose broker holds
    # its own client's exact subscriptions.
    last = rows[-1]["reduced_to_pct"]
    assert last > first
    # Covering never stores more than no-covering anywhere.
    for row in rows:
        assert row["stored_cov"] <= row["stored_no_cov"]
