"""Compiled XPE fast path vs. the reference interpreter.

The same matching workload — a PSD query pool probed with every
DTD-derived publication path — timed twice: once through the compiled
dispatch (``repro.xpath.compiled``, the default) and once with the
fast path disabled (``REPRO_COMPILED=0`` mode).  Both tests assert the
identical match count, so the pair doubles as a coarse differential
check; ``tests/test_matcher_differential.py`` carries the exhaustive
one.

The covering benchmark exercises the other compiled consumer:
``covers()`` between simple expressions reduces to one anchored-regex
search (plus the LRU memo on repeat pairs).
"""

import pytest

from repro.covering.algorithms import covers_uncached
from repro.covering.pathmatch import path_matcher
from repro.dtd.paths import enumerate_paths
from repro.dtd.samples import psd_dtd
from repro.workloads.datasets import psd_queries
from repro.xpath.compiled import compile_xpe, set_compiled_enabled


@pytest.fixture(scope="module")
def match_workload():
    exprs = list(psd_queries(300, seed=23).exprs)
    paths = enumerate_paths(psd_dtd(), max_depth=10)
    return exprs, paths


@pytest.fixture
def reference_mode():
    """Run the enclosed benchmark with the compiled fast path off."""
    set_compiled_enabled(False)
    try:
        yield
    finally:
        set_compiled_enabled(True)


def _match_all(exprs, paths):
    total = 0
    for path in paths:
        wants = path_matcher(path, None)
        for expr in exprs:
            if wants(expr):
                total += 1
    return total


def _expected_matches(exprs, paths):
    """Ground truth via the reference interpreter, computed once."""
    set_compiled_enabled(False)
    try:
        return _match_all(exprs, paths)
    finally:
        set_compiled_enabled(True)


def test_match_throughput_compiled(benchmark, match_workload):
    exprs, paths = match_workload
    expected = _expected_matches(exprs, paths)
    for expr in exprs:
        compile_xpe(expr)  # price compilation outside the timed region
    total = benchmark(_match_all, exprs, paths)
    assert total == expected


def test_match_throughput_reference(benchmark, match_workload, reference_mode):
    exprs, paths = match_workload
    total = benchmark(_match_all, exprs, paths)
    assert total == _expected_matches(exprs, paths)


def _covers_all_pairs(exprs):
    hits = 0
    for s1 in exprs:
        for s2 in exprs:
            if covers_uncached(s1, s2):
                hits += 1
    return hits


def test_covers_throughput_compiled(benchmark):
    # covers_uncached keeps the memo out of the loop, so this times the
    # compiled simple-pair fast path (plus the structural fallbacks).
    exprs = list(psd_queries(120, seed=29).exprs)
    hits = benchmark.pedantic(_covers_all_pairs, args=(exprs,), rounds=1, iterations=1)
    assert hits >= len(exprs)  # reflexivity


def test_covers_throughput_reference(benchmark, reference_mode):
    exprs = list(psd_queries(120, seed=29).exprs)
    hits = benchmark.pedantic(_covers_all_pairs, args=(exprs,), rounds=1, iterations=1)
    assert hits >= len(exprs)
