#!/usr/bin/env python
"""Gate hot-path performance against the committed baseline.

Usage::

    python benchmarks/check_obs_regression.py BENCH_obs.json
    python benchmarks/check_obs_regression.py BENCH_obs.json --threshold 2.0
    python benchmarks/check_obs_regression.py BENCH_obs.json --write-baseline

Reads the observability artifact a benchmark session wrote (see
``benchmarks/conftest.py``) and compares every instrumented hot-path
timing histogram against ``benchmarks/BENCH_baseline.json``.  Timings
are first divided by each run's *calibration* figure — the measured
cost of a fixed pure-Python loop — so a faster or slower machine does
not read as a code change.  A metric fails when its calibrated p50
exceeds the baseline's by more than ``--threshold`` (default 2.0).

Large *improvements* fail too: a calibrated p50 below ``1/threshold``
of the baseline means the baseline no longer describes the code and
must be refreshed deliberately (``--write-baseline``) so the gate keeps
teeth — otherwise a later regression that merely gives the improvement
back would pass unnoticed.  ``--allow-improvement`` downgrades these to
warnings (useful on the PR that introduces the speedup, before its
baseline refresh lands).

Exit status: 0 on pass, 1 on regression, stale-fast baseline, or
malformed input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")

#: Histograms with fewer samples than this are too noisy to gate on.
MIN_SAMPLES = 30

#: Only metrics under these prefixes are performance gates; counters and
#: workload-dependent distributions (delivery delay depends on the
#: latency model, not code speed) are reported but never fail the build.
GATED_PREFIXES = (
    "adverts.",
    "broker.handle.",
    "covering.tree.",
    "matching.",
    "merging.",
    "network.dispatch",
    "telemetry.",
    "views.",
)


def load(path):
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            "%s: not found — run the benchmark suite first "
            "(pytest benchmarks/ --benchmark-disable)" % path
        )
    calibration = payload.get("meta", {}).get("calibration_seconds")
    histograms = payload.get("metrics", {}).get("histograms", {})
    if not calibration or calibration <= 0:
        raise SystemExit("%s: missing or invalid meta.calibration_seconds" % path)
    return calibration, histograms


def gated(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in GATED_PREFIXES)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_obs.json from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--allow-improvement",
        action="store_true",
        help="report metrics faster than 1/threshold of the baseline "
        "as warnings instead of failures",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the current artifact over the baseline and exit",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="PREFIX",
        default=None,
        help="gate only metrics under this prefix (repeatable); lets "
        "several CI lanes share one baseline file, each gating its own "
        "slice (e.g. the mass-matching lane passes --only matching.mass.)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        metavar="PREFIX",
        default=None,
        help="skip metrics under this prefix (repeatable) — the "
        "complement of --only for the lane that runs everything else",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        with open(args.current) as handle:
            payload = json.load(handle)
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline written to %s" % args.baseline)
        return 0

    if not os.path.exists(args.baseline):
        print(
            "no baseline at %s — run with --write-baseline first" % args.baseline
        )
        return 1

    base_cal, base_hists = load(args.baseline)
    cur_cal, cur_hists = load(args.current)
    print(
        "calibration: baseline %.4fs, current %.4fs (machine ratio %.2fx)"
        % (base_cal, cur_cal, cur_cal / base_cal)
    )

    failures = []
    improvements = []
    compared = 0
    for name in sorted(base_hists):
        if not gated(name):
            continue
        if args.only and not any(name.startswith(p) for p in args.only):
            continue
        if args.exclude and any(name.startswith(p) for p in args.exclude):
            continue
        base = base_hists[name]
        current = cur_hists.get(name)
        if current is None:
            failures.append(
                "%s: present in baseline but missing from this run "
                "(renamed? update the baseline)" % name
            )
            continue
        if base["count"] < MIN_SAMPLES or current["count"] < MIN_SAMPLES:
            print(
                "  skip %-40s (samples: baseline %d, current %d)"
                % (name, base["count"], current["count"])
            )
            continue
        base_p50 = base["p50"] / base_cal
        cur_p50 = current["p50"] / cur_cal
        ratio = cur_p50 / base_p50 if base_p50 else 1.0
        improved = ratio < 1.0 / args.threshold
        if ratio > args.threshold:
            verdict = "FAIL"
        elif improved:
            verdict = "warn" if args.allow_improvement else "FAST"
        else:
            verdict = "ok"
        print(
            "  %-4s %-40s calibrated p50 ratio %.2fx (n=%d)"
            % (verdict, name, ratio, current["count"])
        )
        compared += 1
        if ratio > args.threshold:
            failures.append(
                "%s: calibrated p50 regressed %.2fx (> %.1fx threshold)"
                % (name, ratio, args.threshold)
            )
        elif improved:
            improvements.append(
                "%s: calibrated p50 improved to %.2fx of baseline "
                "(< 1/%.1f)" % (name, ratio, args.threshold)
            )

    print("compared %d gated hot-path metrics" % compared)
    if improvements:
        print("\nLARGE IMPROVEMENTS (baseline is stale):")
        for improvement in improvements:
            print("  - %s" % improvement)
        print(
            "  refresh the baseline deliberately: "
            "python benchmarks/check_obs_regression.py %s --write-baseline"
            % args.current
        )
    if failures:
        print("\nREGRESSIONS:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    if improvements and not args.allow_improvement:
        return 1
    print("no hot-path regression beyond %.1fx" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
