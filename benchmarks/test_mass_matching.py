"""Mass-subscription matching: shared automaton vs. the per-XPE scan.

The CI ``mass-matching`` lane runs this file.  It loads 100,000
Zipf-skewed synthetic subscriptions (see ``repro.workloads.mass``) into
a :class:`LinearMatcher` (one compiled check per resident XPE per
publication — the paper's arrangement) and a
:class:`SharedAutomatonMatcher` (one lazy-DFA walk per publication,
whatever the table size), probes both with the same publication paths,
and asserts:

* the engines return identical key sets on every probe, and
* the shared engine is at least :data:`SPEEDUP_FLOOR` times faster
  end-to-end.

Per-probe timings land in the ``matching.mass.*`` histograms of
``BENCH_obs.json``, which ``check_obs_regression.py --only
matching.mass.`` gates bidirectionally against the committed baseline —
a regression that eats the speedup fails CI, and so does an unexplained
further speedup (refresh the baseline deliberately).

The 1M-subscription variant is marked ``soak`` and excluded from the
PR lane (``-m "not soak"``); the scheduled soak job runs it.
"""

import time

import pytest

from repro import obs
from repro.matching.engine import LinearMatcher
from repro.matching.shared_automaton import SharedAutomatonMatcher
from repro.workloads.mass import (
    MassWorkloadParams,
    generate_mass_subscriptions,
    generate_probe_paths,
)

SUBSCRIPTIONS = 100_000
SOAK_SUBSCRIPTIONS = 1_000_000

#: Distinct probe paths per engine — comfortably above the regression
#: gate's MIN_SAMPLES (30) so the histograms are trusted.
PROBES = 60

#: The ISSUE's acceptance floor: shared automaton at least this many
#: times faster than the per-XPE scan at 100k resident subscriptions.
SPEEDUP_FLOOR = 10.0


def _distinct_probe_paths(count, params, seed):
    """*count* distinct paths — LinearMatcher memoises repeat paths
    (keys_cache), which would time a dict hit instead of a scan."""
    paths = []
    seen = set()
    batch_seed = seed
    while len(paths) < count:
        for path in generate_probe_paths(count, params, seed=batch_seed):
            if path not in seen:
                seen.add(path)
                paths.append(path)
                if len(paths) == count:
                    break
        batch_seed += 1
    return paths


def _build_engines(count, seed=7):
    params = MassWorkloadParams()
    pairs = generate_mass_subscriptions(count, params, seed=seed)
    linear = LinearMatcher()
    shared = SharedAutomatonMatcher()
    for expr, key in pairs:
        linear.add(expr, key)
        shared.add(expr, key)
    paths = _distinct_probe_paths(PROBES, params, seed=seed + 1)
    return linear, shared, paths


def _timed_probes(engine, paths, metric):
    """Match every path, one histogram sample per path; returns the
    per-path results and wall seconds."""
    registry = obs.get_registry()
    results = []
    elapsed = 0.0
    for path in paths:
        start = time.perf_counter()
        with registry.timer(metric):
            results.append(engine.match(path))
        elapsed += time.perf_counter() - start
    return results, elapsed


def _run_pair(count):
    linear, shared, paths = _build_engines(count)
    # Duplicate subscriptions collapse to one resident expression (under
    # many keys) in both engines.
    assert len(shared) == len(linear)

    # Warm both engines outside the timed region: the first probe
    # compiles every resident XPE's regex (linear) and builds the DFA
    # start state (shared) — one-time costs, not per-publication ones.
    warmup = ("warmup-only",)
    linear.match(warmup)
    shared.match(warmup)

    linear_results, linear_seconds = _timed_probes(
        linear, paths, "matching.mass.linear.match"
    )
    shared_results, shared_seconds = _timed_probes(
        shared, paths, "matching.mass.shared.match"
    )

    for path, expected, got in zip(paths, linear_results, shared_results):
        assert got == expected, "engines disagree on %r" % (path,)

    registry = obs.get_registry()
    registry.set_gauge("matching.mass.subscriptions", count)
    registry.set_gauge(
        "matching.mass.automaton_states", shared.automaton_size()
    )
    registry.set_gauge("matching.mass.dfa_states", shared.dfa_size())

    speedup = linear_seconds / shared_seconds if shared_seconds else 0.0
    print(
        "\n%d subscriptions, %d probes: linear %.3fs, shared %.3fs "
        "(%.1fx), NFA states %d, DFA states %d"
        % (
            count,
            len(paths),
            linear_seconds,
            shared_seconds,
            speedup,
            shared.automaton_size(),
            shared.dfa_size(),
        )
    )
    assert speedup >= SPEEDUP_FLOOR, (
        "shared automaton only %.1fx faster than the per-XPE scan at "
        "%d subscriptions (floor %.0fx)" % (speedup, count, SPEEDUP_FLOOR)
    )


@pytest.mark.paper
def test_mass_matching_100k():
    _run_pair(SUBSCRIPTIONS)


@pytest.mark.paper
def test_dfa_eviction_steady_state():
    """DFA-overflow discipline: under steady-state mass matching with a
    tight state budget, overflow is absorbed by cold-half eviction —
    ``dfa_flushes`` (wholesale discards, now reserved for structural
    invalidation) stays 0, the probes stay correct, and the cache obeys
    the bound throughout.  Pins the replacement of the old
    flush-everything overflow response."""
    limit = 64
    count = SUBSCRIPTIONS // 5
    params = MassWorkloadParams()
    pairs = generate_mass_subscriptions(count, params, seed=11)
    reference = LinearMatcher()
    shared = SharedAutomatonMatcher(dfa_state_limit=limit)
    for expr, key in pairs:
        reference.add(expr, key)
        shared.add(expr, key)
    # Enough distinct paths that the DFA working set overflows the
    # budget many times over; three passes make the second and third
    # re-walk evicted territory (the steady state being pinned).
    paths = _distinct_probe_paths(PROBES, params, seed=12)
    registry = obs.get_registry()
    for _pass in range(3):
        for path in paths:
            with registry.timer("matching.mass.evicting.match"):
                got = shared.match(path)
            assert got == reference.match(path), path
    print(
        "\n%d subscriptions, limit %d: %d evictions, %d flushes, "
        "%d live DFA states"
        % (count, limit, shared.dfa_evictions, shared.dfa_flushes,
           shared.dfa_size())
    )
    assert shared.dfa_evictions > 0, "budget never overflowed — raise churn"
    assert shared.dfa_flushes == 0, (
        "steady-state matching must never wholesale-flush the DFA "
        "(%d flushes)" % shared.dfa_flushes
    )
    assert shared.dfa_size() <= limit


@pytest.mark.paper
@pytest.mark.soak
def test_mass_matching_1m():
    _run_pair(SOAK_SUBSCRIPTIONS)
