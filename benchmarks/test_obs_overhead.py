"""Observability smoke benchmark: a 7-broker end-to-end workload.

Two purposes:

* it exercises every instrumented hot path (broker dispatch, tree
  insert/match, advertisement intersection, overlay dispatch) so the
  ``BENCH_obs.json`` artifact always carries their timing histograms —
  this is the workload CI's ``perf-smoke`` job gates on;
* the enabled/disabled pair measures the instrumentation overhead
  itself, which must stay in the noise (the registry is one attribute
  check per site when off, one clock pair when on).
"""

import pytest

from repro import obs
from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network.latency import ClusterLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def _run_workload(xpes_per_subscriber=30, documents=5, tracing=False):
    """Quickstart-shaped run: 7 brokers, PSD advertisements, four leaf
    subscribers, one publisher."""
    dtd = psd_dtd()
    overlay = Overlay.binary_tree(
        3,
        config=RoutingConfig.full(),
        latency_model=ClusterLatency(seed=7),
    )
    if tracing:
        overlay.enable_tracing()
    subscribers = [
        overlay.attach_subscriber("sub%d" % index, leaf)
        for index, leaf in enumerate(overlay.leaf_brokers())
    ]
    publisher = overlay.attach_publisher("pub0", "b1")
    publisher.advertise_dtd(dtd)
    overlay.run()
    for index, subscriber in enumerate(subscribers):
        for expr in psd_queries(
            xpes_per_subscriber, seed=100 + index
        ).exprs:
            subscriber.subscribe(expr)
    overlay.run()
    for doc in generate_documents(dtd, documents, seed=3, target_bytes=1024):
        publisher.publish_document(doc)
    overlay.run()
    return overlay


@pytest.mark.benchmark(group="obs-overhead")
def test_overlay_run_metrics_enabled(benchmark):
    obs.enable_metrics()
    overlay = benchmark.pedantic(_run_workload, rounds=3, iterations=1)
    snapshot = overlay.metrics_snapshot()
    assert snapshot["counters"]["network.messages"] > 0
    assert snapshot["histograms"]["broker.handle.publish"]["count"] > 0
    assert snapshot["network"]["network_traffic"] > 0


@pytest.mark.benchmark(group="obs-overhead")
def test_overlay_run_metrics_disabled(benchmark):
    was_enabled = obs.get_registry().enabled
    obs.disable_metrics()
    try:
        overlay = benchmark.pedantic(_run_workload, rounds=3, iterations=1)
    finally:
        if was_enabled:
            obs.enable_metrics()
    assert overlay.stats.network_traffic > 0


@pytest.mark.benchmark(group="tracing-overhead")
def test_overlay_run_tracing_enabled(benchmark):
    """The tracing-on cost of the same workload.  Metrics stay disabled
    so the gated ``broker.handle.*``/``matching.*`` histograms from the
    obs-overhead pair are not polluted by span bookkeeping; the span
    stage histograms publish afterwards under the ungated
    ``trace.stage.*`` prefix."""
    from repro.obs.tracing import verify_traces

    was_enabled = obs.get_registry().enabled
    obs.disable_metrics()
    try:
        overlay = benchmark.pedantic(
            lambda: _run_workload(tracing=True), rounds=3, iterations=1
        )
    finally:
        if was_enabled:
            obs.enable_metrics()
    assert len(overlay.tracing) > 0
    assert verify_traces(overlay) == []
    overlay.tracing.publish_stage_metrics(obs.get_registry())


@pytest.mark.benchmark(group="tracing-overhead")
def test_overlay_run_tracing_disabled(benchmark):
    """The tracing-off baseline of the pair: same workload and the same
    metrics state, spans off — what check_obs_regression.py compares the
    2x perf gate against."""
    was_enabled = obs.get_registry().enabled
    obs.disable_metrics()
    try:
        overlay = benchmark.pedantic(_run_workload, rounds=3, iterations=1)
    finally:
        if was_enabled:
            obs.enable_metrics()
    assert overlay.tracing is None
    assert overlay.stats.network_traffic > 0
