"""Figure 9 benchmark: false positives vs. imperfect-merging degree."""

import pytest

from repro.experiments.fig9 import run_fig9


@pytest.mark.paper
def test_fig9_false_positive_curve(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig9(), rounds=1, iterations=1
    )
    report_sink.append(result.format())

    rows = result.rows()
    degrees = [row["imperfect_degree"] for row in rows]
    fps = [row["false_positive_pct"] for row in rows]
    sizes = [row["table_size"] for row in rows]
    # Paper shape: monotone non-decreasing false positives with D;
    # D=0 introduces none; larger D merges more (table never grows).
    assert fps[0] == 0.0
    assert all(b >= a - 1e-9 for a, b in zip(fps, fps[1:]))
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))
    # Small-D budgets stay within the paper's ~2%% tolerance band...
    assert dict(zip(degrees, fps))[0.1] <= 2.0
    # ...and a generous budget does merge (table shrinks, FPs appear).
    assert sizes[-1] < sizes[0]
    assert fps[-1] > 0.0
